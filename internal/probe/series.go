// Package probe is the simulation-wide observability layer: declarative
// mid-run sampling probes (time series), a zero-allocation flight recorder of
// structured trace events, and wall-clock execution timelines exported as
// Chrome trace_event JSON.
//
// The package deliberately imports nothing but the standard library so every
// layer of the simulator (netsim, cm, scenario, sweep) can depend on it
// without cycles. Everything here is observation-only: nothing consumes
// random numbers or mutates simulation state.
package probe

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Point is one sample of a time series.
type Point struct {
	T time.Duration `json:"t"`
	V float64       `json:"v"`
}

// Series is an append-only time series. Fields are exported (unlike the old
// internal/trace predecessor) so a scenario Result carrying probe series can
// be JSON-encoded and byte-compared across serial/parallel/sharded runs.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// NewSeries returns an empty series with the given name.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample. Samples should be added in non-decreasing time order;
// out-of-order samples are accepted but Resample assumes ordering.
func (s *Series) Add(t time.Duration, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// At returns the i-th sample.
func (s *Series) At(i int) Point { return s.Points[i] }

// Last returns the most recent sample and whether the series is non-empty.
func (s *Series) Last() (Point, bool) {
	if len(s.Points) == 0 {
		return Point{}, false
	}
	return s.Points[len(s.Points)-1], true
}

// Freeze returns a value copy of the series whose Points slice is detached
// from the live one, so a result collected mid-run (a snapshot) is immune to
// later sampling appends.
func (s *Series) Freeze() Series {
	return Series{Name: s.Name, Points: append([]Point(nil), s.Points...)}
}

// Values returns just the sample values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Mean returns the arithmetic mean of the sample values (0 for an empty
// series).
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// Min and Max return the extreme sample values (0 for an empty series).
func (s *Series) Min() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].V
	for _, p := range s.Points {
		if p.V < m {
			m = p.V
		}
	}
	return m
}

// Max returns the maximum sample value.
func (s *Series) Max() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].V
	for _, p := range s.Points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Resample buckets the series into fixed-width intervals between start and
// end, averaging the samples in each bucket. Empty buckets carry the previous
// bucket's value (step interpolation), which matches how the paper's figures
// present adaptation traces.
func (s *Series) Resample(start, end, width time.Duration) *Series {
	if width <= 0 {
		panic("probe: Resample width must be positive")
	}
	out := NewSeries(s.Name)
	if end < start {
		return out
	}
	var prev float64
	i := 0
	pts := s.Points
	for t := start; t <= end; t += width {
		var sum float64
		var n int
		for i < len(pts) && pts[i].T < t+width {
			if pts[i].T >= t {
				sum += pts[i].V
				n++
			}
			i++
		}
		v := prev
		if n > 0 {
			v = sum / float64(n)
		}
		out.Add(t, v)
		prev = v
	}
	return out
}

// TransitionCount returns the number of adjacent samples whose values differ,
// a measure of how often an adaptive application switched layers; used to
// compare the ALF and rate-callback traces (Fig. 8 vs Fig. 9).
func (s *Series) TransitionCount() int {
	n := 0
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].V != s.Points[i-1].V {
			n++
		}
	}
	return n
}

// CSV renders the series (or several series sharing timestamps) as CSV with a
// header row; times are in seconds.
func CSV(series ...*Series) string {
	var b strings.Builder
	b.WriteString("time_s")
	for _, s := range series {
		b.WriteString(",")
		b.WriteString(s.Name)
	}
	b.WriteString("\n")
	if len(series) == 0 {
		return b.String()
	}
	n := 0
	for _, s := range series {
		if s.Len() > n {
			n = s.Len()
		}
	}
	for i := 0; i < n; i++ {
		var t time.Duration
		for _, s := range series {
			if i < s.Len() {
				t = s.At(i).T
				break
			}
		}
		fmt.Fprintf(&b, "%.3f", t.Seconds())
		for _, s := range series {
			if i < s.Len() {
				fmt.Fprintf(&b, ",%.3f", s.At(i).V)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RateEstimator converts byte-count events into a rate series by accumulating
// bytes over fixed windows. The window width trades smoothing against
// responsiveness; the experiments use 250–1000 ms windows, similar to the
// granularity visible in the paper's figures.
type RateEstimator struct {
	window      time.Duration
	windowStart time.Duration
	bytes       int64
	series      *Series
	started     bool
}

// NewRateEstimator returns an estimator producing a series with the given
// name from byte arrivals, in bytes per second.
func NewRateEstimator(name string, window time.Duration) *RateEstimator {
	if window <= 0 {
		panic("probe: RateEstimator window must be positive")
	}
	return &RateEstimator{window: window, series: NewSeries(name)}
}

// Record accumulates n bytes observed at time t, closing windows as needed.
func (r *RateEstimator) Record(t time.Duration, n int) {
	if !r.started {
		r.windowStart = t - t%r.window
		r.started = true
	}
	for t >= r.windowStart+r.window {
		r.flush()
	}
	r.bytes += int64(n)
}

func (r *RateEstimator) flush() {
	rate := float64(r.bytes) / r.window.Seconds()
	r.series.Add(r.windowStart+r.window, rate)
	r.windowStart += r.window
	r.bytes = 0
}

// Finish closes the current window (if any bytes are pending) and returns the
// series of rates in bytes/second.
func (r *RateEstimator) Finish() *Series {
	if r.started && r.bytes > 0 {
		r.flush()
	}
	return r.series
}

// Series returns the (possibly still growing) series.
func (r *RateEstimator) Series() *Series { return r.series }

// Summary holds order statistics for a sample set.
type Summary struct {
	Count          int
	Mean, Min, Max float64
	P50, P90, P99  float64
	StdDev         float64
}

// Summarize computes summary statistics of vs.
func Summarize(vs []float64) Summary {
	if len(vs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	var sum, sqsum float64
	for _, v := range sorted {
		sum += v
		sqsum += v * v
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sqsum/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		Count:  len(sorted),
		Mean:   mean,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P50:    percentile(sorted, 0.50),
		P90:    percentile(sorted, 0.90),
		P99:    percentile(sorted, 0.99),
		StdDev: math.Sqrt(variance),
	}
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := p * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f sd=%.2f",
		s.Count, s.Mean, s.Min, s.P50, s.P90, s.P99, s.Max, s.StdDev)
}
