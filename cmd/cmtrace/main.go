// Command cmtrace runs one layered-streaming adaptation experiment (the
// workloads behind Figures 8-10) and writes the rate traces as CSV, ready for
// plotting.
//
// Example:
//
//	cmtrace -mode alf -duration 25s > fig8.csv
//	cmtrace -mode rate -duration 20s > fig9.csv
//	cmtrace -mode rate -duration 70s -delay-feedback > fig10.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/app"
	"repro/internal/experiments"
)

func main() {
	var (
		mode     = flag.String("mode", "alf", "adaptation API: alf (request/callback) or rate (rate callback)")
		duration = flag.Duration("duration", 25*time.Second, "trace length")
		delayFB  = flag.Bool("delay-feedback", false, "delay receiver feedback by min(500 packets, 2s) as in Figure 10")
		crossBps = flag.Float64("cross", 1_200_000, "cross-traffic rate in bytes/second during on periods (0 disables)")
		table    = flag.Bool("table", false, "print a table instead of CSV")
	)
	flag.Parse()

	cfg := experiments.AdaptationConfig{Duration: *duration, CrossRate: *crossBps}
	switch *mode {
	case "alf":
		cfg.Mode = app.ModeALF
	case "rate":
		cfg.Mode = app.ModeRateCallback
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q (want alf or rate)\n", *mode)
		os.Exit(2)
	}
	cfg.Feedback = app.FeedbackPolicy{EveryPackets: 1}
	if *delayFB {
		cfg.Feedback = app.FeedbackPolicy{EveryPackets: 500, MaxDelay: 2 * time.Second}
	}

	res := experiments.RunAdaptation(cfg)
	if *table {
		fmt.Println(res.Table())
		return
	}
	fmt.Print(res.CSV())
}
