package experiments

import (
	"fmt"
	"time"

	"repro/internal/probe"
	"repro/internal/scenario"
)

// FailureConfig parameterises the adaptation-under-failure experiment: a
// dumbbell whose shared bottleneck fails and recovers on a schedule while the
// senders' CM macroflows are observed. The paper's evaluation varies
// available bandwidth with cross traffic (Figures 8-10); this runner goes
// further and removes the path entirely, the churn the dynamics subsystem
// exists to model.
type FailureConfig struct {
	// DownAt / UpAt bracket the bottleneck outage (defaults 6 s / 10 s).
	DownAt, UpAt time.Duration
	// Duration is the trace length (default 30 s).
	Duration time.Duration
	// SampleEvery is the observation interval (default 250 ms).
	SampleEvery time.Duration
	Seed        int64
}

func (c *FailureConfig) fillDefaults() {
	if c.DownAt <= 0 {
		c.DownAt = 6 * time.Second
	}
	if c.UpAt <= c.DownAt {
		c.UpAt = c.DownAt + 4*time.Second
	}
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 250 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// FailureResult holds the observed traces of one adaptation-under-failure
// run.
type FailureResult struct {
	Config FailureConfig
	// Window is the s0 CM's aggregate congestion window in bytes, sampled
	// every SampleEvery (the dumbbell's s0 drives a single macroflow, so the
	// aggregate is the s0->d0 macroflow window).
	Window *probe.Series
	// Rate is the macroflow's sustainable-rate estimate (bytes/second).
	Rate *probe.Series
	// WindowBefore/WindowDuring/WindowAfter summarise the back-off story:
	// the window just before the outage, at the end of the outage, and at
	// the end of the run.
	WindowBefore, WindowDuring, WindowAfter int
	// Result is the scenario outcome, including the executed event records.
	Result *scenario.Result
}

// RunFailure executes the adaptation-under-failure experiment. The mid-run
// observation is entirely declarative: two spec probes sample the sender
// CM's aggregate window and rate, and the back-off summary is computed from
// the returned series — the runner never drives the scheduler itself.
func RunFailure(cfg FailureConfig) (FailureResult, error) {
	cfg.fillDefaults()
	spec := scenario.FlakyDumbbell(scenario.FlakyDumbbellParams{
		DownAt: cfg.DownAt,
		UpAt:   cfg.UpAt,
		Dumbbell: scenario.DumbbellParams{
			Duration: cfg.Duration,
			Seed:     cfg.Seed,
		},
	})
	spec.Probes = append(spec.Probes,
		probe.Spec{Target: "cm[s0].cwnd", Interval: cfg.SampleEvery, Name: "macroflow-cwnd"},
		probe.Spec{Target: "cm[s0].rate", Interval: cfg.SampleEvery, Name: "macroflow-rate"},
	)
	res := FailureResult{Config: cfg}
	out, err := scenario.Run(spec)
	if err != nil {
		return res, err
	}
	res.Result = out
	res.Window = &out.Series[len(out.Series)-2]
	res.Rate = &out.Series[len(out.Series)-1]
	// The back-off summary is the last sample of each phase: just before the
	// outage, at its end, and at the end of the run.
	for i := 0; i < res.Window.Len(); i++ {
		p := res.Window.At(i)
		switch {
		case p.T <= cfg.DownAt:
			res.WindowBefore = int(p.V)
		case p.T <= cfg.UpAt:
			res.WindowDuring = int(p.V)
		default:
			res.WindowAfter = int(p.V)
		}
	}
	return res, nil
}

// Table renders the trace and the back-off/recovery summary.
func (r FailureResult) Table() string {
	rows := make([][]string, 0, r.Window.Len())
	for i := 0; i < r.Window.Len(); i++ {
		w := r.Window.At(i)
		rate := 0.0
		if i < r.Rate.Len() {
			rate = r.Rate.At(i).V
		}
		phase := "up"
		if w.T > r.Config.DownAt && w.T <= r.Config.UpAt {
			phase = "DOWN"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", w.T.Seconds()),
			phase,
			fmt.Sprintf("%.0f", w.V/1024),
			fmt.Sprintf("%.0f", rate/1024),
		})
	}
	title := fmt.Sprintf(
		"Adaptation under failure (bottleneck down %v-%v): s0->d0 macroflow cwnd %dKB before, %dKB during outage, %dKB after recovery\n",
		r.Config.DownAt, r.Config.UpAt,
		r.WindowBefore/1024, r.WindowDuring/1024, r.WindowAfter/1024)
	if r.Result != nil {
		for _, ev := range r.Result.Events {
			title += fmt.Sprintf("event t=%v %s link=%d fired=%v routes-changed=%d\n",
				ev.At, ev.Kind, ev.Link, ev.Fired, ev.RoutesChanged)
		}
	}
	return title + formatTable([]string{"t(s)", "link", "cwnd KB", "rate KB/s"}, rows)
}

// CSV renders the failure traces for plotting.
func (r FailureResult) CSV() string {
	return probe.CSV(r.Window, r.Rate)
}
