package probe

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite the timeline golden files")

// checkGolden compares the timeline's trace_event export against the named
// golden file (regenerate with `go test ./internal/probe -run Golden -update`).
// The export contains only span-relative offsets — the wall-clock epoch never
// appears — so hand-constructed spans render byte-identically everywhere.
func checkGolden(t *testing.T, tl *Timeline, name string) {
	t.Helper()
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace_event output differs from %s:\ngot:  %s\nwant: %s", path, buf.Bytes(), want)
	}
}

// The serial case: one lane, one whole-run span, with a per-kind cost
// breakdown as the profiler produces it.
func TestTimelineGoldenSerial(t *testing.T) {
	tl := NewTimeline("serial")
	tl.Add(0, Span{
		Name:  "run",
		Start: 250 * time.Microsecond, Dur: 42 * time.Millisecond,
		VirtStart: 0, VirtEnd: 3 * time.Second,
		Kinds: []KindCost{
			{Kind: "pkt-deliver", Count: 1200, Ns: 18_500_000},
			{Kind: "pkt-transmit", Count: 1180, Ns: 9_000_000},
			{Kind: "workload-app", Count: 64, Ns: 2_250_000},
		},
	})
	checkGolden(t, tl, "timeline_serial.json")
}

// The sharded case: two shard lanes plus the coordinator, two windows each
// with breakdowns, and the barrier spans carrying injection counts.
func TestTimelineGoldenSharded(t *testing.T) {
	tl := NewTimeline("shard 0", "shard 1", "coordinator")
	tl.Add(0, Span{
		Name: "window", Start: 100 * time.Microsecond, Dur: 5 * time.Millisecond,
		VirtStart: 0, VirtEnd: 10 * time.Millisecond,
		Kinds: []KindCost{
			{Kind: "pkt-deliver", Count: 40, Ns: 700_000},
			{Kind: "pkt-transmit", Count: 38, Ns: 300_000},
		},
	})
	tl.Add(1, Span{
		Name: "window", Start: 120 * time.Microsecond, Dur: 4 * time.Millisecond,
		VirtStart: 0, VirtEnd: 10 * time.Millisecond,
		Kinds: []KindCost{
			{Kind: "cm-grant", Count: 12, Ns: 150_000},
		},
	})
	tl.Add(2, Span{
		Name: "barrier", Start: 5200 * time.Microsecond, Dur: 80 * time.Microsecond,
		VirtStart: 10 * time.Millisecond, VirtEnd: 10 * time.Millisecond, Count: 3,
	})
	tl.Add(0, Span{
		Name: "window", Start: 5300 * time.Microsecond, Dur: 4500 * time.Microsecond,
		VirtStart: 10 * time.Millisecond, VirtEnd: 20 * time.Millisecond,
		Kinds: []KindCost{
			{Kind: "pkt-deliver", Count: 44, Ns: 640_000},
		},
	})
	tl.Add(1, Span{
		Name: "window", Start: 5310 * time.Microsecond, Dur: 4400 * time.Microsecond,
		VirtStart: 10 * time.Millisecond, VirtEnd: 20 * time.Millisecond,
	})
	tl.Add(2, Span{
		Name: "barrier", Start: 9900 * time.Microsecond, Dur: 60 * time.Microsecond,
		VirtStart: 20 * time.Millisecond, VirtEnd: 20 * time.Millisecond, Count: 1,
	})
	checkGolden(t, tl, "timeline_sharded.json")
}
