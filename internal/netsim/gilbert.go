package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/simtime"
)

// GilbertElliott configures the two-state bursty loss model of the same name:
// the link is in a Good or a Bad state, each packet arrival may flip the state,
// and each state has its own drop probability. Unlike the independent Bernoulli
// LossRate knob, losses cluster into bursts whose mean length is 1/PBadGood
// packets — the loss pattern of a fading wireless channel, which is what the
// paper's adaptation experiments assume the CM must survive.
//
// The model is driven by the link's private random source, so runs stay
// byte-identical whether scenarios execute serially or in parallel.
type GilbertElliott struct {
	// PGoodBad is the per-packet probability of a Good->Bad transition.
	PGoodBad float64 `json:"p_good_bad"`
	// PBadGood is the per-packet probability of a Bad->Good transition; the
	// mean burst length is 1/PBadGood packets.
	PBadGood float64 `json:"p_bad_good"`
	// LossGood is the drop probability while in the Good state (usually 0).
	LossGood float64 `json:"loss_good,omitempty"`
	// LossBad is the drop probability while in the Bad state. Zero is
	// normalised to 1 when the model is installed: a declared Bad state that
	// never drops would make the model a no-op.
	LossBad float64 `json:"loss_bad,omitempty"`
	// Tick switches the model to time-driven operation: state transitions
	// are evaluated on a clock every Tick of virtual time (PGoodBad and
	// PBadGood become per-tick probabilities) instead of on each packet
	// arrival, so burst durations are set by the clock and decouple from the
	// offered load — a low-rate flow sees the same fade timing as a
	// saturating one. Zero keeps the per-arrival (packet-driven) model.
	Tick time.Duration `json:"tick,omitempty"`
}

// Validate checks that every probability is in [0, 1].
func (g *GilbertElliott) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"p_good_bad", g.PGoodBad},
		{"p_bad_good", g.PBadGood},
		{"loss_good", g.LossGood},
		{"loss_bad", g.LossBad},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("gilbert-elliott: %s = %v out of [0,1]", p.name, p.v)
		}
	}
	if g.Tick < 0 {
		return fmt.Errorf("gilbert-elliott: tick = %v negative", g.Tick)
	}
	return nil
}

// withDefaults returns a copy with the zero LossBad normalised to 1.
func (g GilbertElliott) withDefaults() GilbertElliott {
	if g.LossBad == 0 {
		g.LossBad = 1
	}
	return g
}

// geStep advances the Gilbert-Elliott process by one packet arrival: it
// records state occupancy, samples a drop in the current state and — in the
// packet-driven mode — then samples the state transition (a time-driven model
// flips state on clock ticks instead; see armGETick). Called from Send for
// every offered packet while a model is installed.
func (l *Link) geStep() bool {
	g := l.gilbert
	var lossP, transP float64
	if l.geBad {
		l.stats.GEBadPackets++
		lossP, transP = g.LossBad, g.PBadGood
	} else {
		l.stats.GEGoodPackets++
		lossP, transP = g.LossGood, g.PGoodBad
	}
	drop := lossP > 0 && l.random().Float64() < lossP
	if g.Tick <= 0 && transP > 0 && l.random().Float64() < transP {
		l.geBad = !l.geBad
		l.stats.GETransitions++
	}
	return drop
}

// armGETick starts the transition clock of a time-driven model. Each
// installation gets its own generation; replacing or removing the model bumps
// the counter, so a stale tick chain fires once more, sees the mismatch and
// dies without touching the state or the RNG.
//
// Transition draws come from a private RNG (seeded from the link seed), not
// the link's packet RNG: per-packet draws must not shift the fade schedule,
// or the mode's one promise — burst timing independent of offered load —
// would silently erode. With the split, the same tick model produces the
// exact same state-flip times whatever traffic the link carries.
func (l *Link) armGETick() {
	if l.geTickRNG == nil {
		seed := l.cfg.Seed
		if seed == 0 {
			seed = 1
		}
		l.geTickRNG = rand.New(rand.NewSource(seed + geTickSeedOffset))
	}
	gen := l.geTickGen
	var fire func()
	fire = func() {
		g := l.gilbert
		if l.geTickGen != gen || g == nil || g.Tick <= 0 {
			return
		}
		transP := g.PGoodBad
		if l.geBad {
			transP = g.PBadGood
		}
		if transP > 0 && l.geTickRNG.Float64() < transP {
			l.geBad = !l.geBad
			l.stats.GETransitions++
		}
		l.sched.AfterKind(g.Tick, simtime.KindDynamics, fire)
	}
	l.sched.AfterKind(l.gilbert.Tick, simtime.KindDynamics, fire)
}

// geTickSeedOffset derives the tick RNG's seed from the link seed. The
// offset only has to differ from the offsets of the other per-link streams
// (the packet RNG uses the seed itself); the value is arbitrary but fixed.
const geTickSeedOffset = 0x6745_1302
