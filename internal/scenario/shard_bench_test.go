package scenario

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkShardedDumbbellGrid runs the 64-node cluster grid serially and at
// 2/4/8 shards. One op is a complete simulation (build, run, collect); the
// serial/shards-4 ratio is the headline sharding speedup recorded in the
// BENCH_<pr>.json snapshots. On a single-core machine the sharded variants
// measure pure synchronization overhead instead (GOMAXPROCS gates any real
// parallelism).
func BenchmarkShardedDumbbellGrid(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		name := "serial"
		if shards > 1 {
			name = fmt.Sprintf("shards-%d", shards)
		}
		b.Run(name, func(b *testing.B) {
			spec := DumbbellGrid(GridParams{Duration: 2 * time.Second})
			spec.Shards = shards
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
