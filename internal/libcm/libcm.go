// Package libcm models the user-space CM library of the paper (§2.2). It
// gives applications the convenience of a callback-based API while standing
// in for the kernel/user notification machinery the paper chose: a single
// per-application control socket that the application select()s on, plus
// ioctls that drain batched notifications ("which flows may send", "what are
// the current network conditions").
//
// In the simulation all code runs in one address space, so what libcm
// preserves is the *structure* of the boundary: notifications are queued
// rather than delivered inline, they are drained in batches, and every
// crossing (select wakeup, ioctl, syscall) is counted so the API-overhead
// experiments (Table 1, Figure 6) and the bulk-call ablation can account for
// them.
package libcm

import (
	"sort"
	"time"

	"repro/internal/cm"
	"repro/internal/netsim"
	"repro/internal/simtime"
)

// Mode selects how the application consumes notifications.
type Mode int

const (
	// ModeAuto lets libcm provide the event loop: as soon as the control
	// socket becomes ready a dispatch is scheduled (the application is
	// "coded with the CM in mind").
	ModeAuto Mode = iota
	// ModeManual leaves draining to the application: it calls Ready and
	// Dispatch from its own select loop or polling schedule.
	ModeManual
	// ModeSignal models the SIGIO option: libcm invokes the registered
	// signal handler when the control socket becomes ready; the handler is
	// expected to call Dispatch.
	ModeSignal
)

// Stats counts the kernel/user boundary crossings libcm performs on behalf of
// the application.
type Stats struct {
	// Selects counts select() wake-ups on the control socket.
	Selects int64
	// Ioctls counts control-socket ioctls (send-list drains, status reads,
	// and per-call requests/updates/notifies).
	Ioctls int64
	// Syscalls counts other system calls (open/close of the control socket).
	Syscalls int64
	// SendCallbacks and UpdateCallbacks count application callbacks
	// delivered.
	SendCallbacks   int64
	UpdateCallbacks int64
	// Dispatches counts Dispatch invocations; MaxSendBatch records the
	// largest number of send grants drained by a single ioctl, the benefit
	// of returning all ready flows at once (§2.2.2).
	Dispatches   int64
	MaxSendBatch int
	// Signals counts SIGIO-style notifications delivered in ModeSignal.
	Signals int64
	// Resyncs counts CM restarts this library detected (epoch bumps): each
	// one cleared the queued notifications and cached registrations and
	// invoked the application's restart handler.
	Resyncs int64
}

// Lib is one application's instance of the CM library. It implements
// cm.Dispatcher for the flows it manages.
type Lib struct {
	cm     *cm.CM
	timers simtime.TimerFactory
	mode   Mode

	pendingSend   []cm.FlowID
	pendingStatus map[cm.FlowID]cm.Status
	sendCBs       map[cm.FlowID]cm.SendCallback
	updateCBs     map[cm.FlowID]cm.UpdateCallback

	dispatchTimer     simtime.Timer
	dispatchScheduled bool
	signalHandler     func()
	signalPending     bool

	// epoch is the CM restart epoch this library last synchronized with;
	// every client call compares it against cm.Epoch() and runs the re-sync
	// protocol on mismatch. onRestart is the application's re-sync hook.
	epoch     int64
	onRestart func()

	// injector, when set, interposes on the kernel→user notification path
	// (shared per host). updateSeq stamps DeliverUpdate generations and
	// queuedSeq remembers the newest generation queued per flow, so a
	// delayed status cannot overwrite a fresher one.
	injector  *Injector
	updateSeq map[cm.FlowID]uint64
	queuedSeq map[cm.FlowID]uint64

	stats Stats
}

// New creates a library instance bound to a CM and a timer factory (used to
// schedule automatic dispatches in ModeAuto).
func New(c *cm.CM, timers simtime.TimerFactory, mode Mode) *Lib {
	if c == nil || timers == nil {
		panic("libcm: New requires a CM and a timer factory")
	}
	l := &Lib{
		cm:            c,
		timers:        timers,
		mode:          mode,
		pendingStatus: make(map[cm.FlowID]cm.Status),
		sendCBs:       make(map[cm.FlowID]cm.SendCallback),
		updateCBs:     make(map[cm.FlowID]cm.UpdateCallback),
		epoch:         c.Epoch(),
		updateSeq:     make(map[cm.FlowID]uint64),
		queuedSeq:     make(map[cm.FlowID]uint64),
	}
	l.dispatchTimer = simtime.NewKindTimer(timers, simtime.KindCMNotify, func() {
		l.dispatchScheduled = false
		l.Dispatch()
	})
	// Creating the per-application control socket costs one system call.
	l.stats.Syscalls++
	return l
}

// Stats returns a copy of the boundary-crossing counters.
func (l *Lib) Stats() Stats { return l.stats }

// CM returns the underlying Congestion Manager (used by in-process helpers
// such as the congestion-controlled UDP socket).
func (l *Lib) CM() *cm.CM { return l.cm }

// SetSignalHandler registers the handler invoked in ModeSignal when the
// control socket becomes ready.
func (l *Lib) SetSignalHandler(fn func()) { l.signalHandler = fn }

// SetRestartHandler registers the application's re-sync hook, invoked after
// the library detects a CM restart and has cleared its own state. The handler
// is expected to re-open flows and re-register callbacks (old FlowIDs are
// dead; calls on them count as StaleFlowCalls in the CM).
func (l *Lib) SetRestartHandler(fn func()) { l.onRestart = fn }

// SetInjector installs a notification fault injector (nil removes it). The
// same injector is shared by all library instances of one host.
func (l *Lib) SetInjector(in *Injector) { l.injector = in }

// checkEpoch runs at every client call: if the CM restarted since the library
// last spoke to it, all queued notifications and cached registrations refer
// to dead flow handles and are discarded, and the application's restart
// handler is invoked to re-open and re-register. The epoch is synchronized
// *before* the handler runs so the handler's own calls do not recurse.
func (l *Lib) checkEpoch() {
	e := l.cm.Epoch()
	if e == l.epoch {
		return
	}
	l.epoch = e
	l.stats.Resyncs++
	l.pendingSend = nil
	l.pendingStatus = make(map[cm.FlowID]cm.Status)
	l.sendCBs = make(map[cm.FlowID]cm.SendCallback)
	l.updateCBs = make(map[cm.FlowID]cm.UpdateCallback)
	l.updateSeq = make(map[cm.FlowID]uint64)
	l.queuedSeq = make(map[cm.FlowID]uint64)
	if l.onRestart != nil {
		l.onRestart()
	}
}

// Open creates a CM flow whose callbacks are delivered through this library
// instance (cm_open via libcm).
func (l *Lib) Open(proto netsim.Protocol, src, dst netsim.Addr) cm.FlowID {
	l.checkEpoch()
	l.stats.Syscalls++
	f := l.cm.Open(proto, src, dst)
	l.cm.SetDispatcher(f, l)
	return f
}

// Close releases the flow (cm_close).
func (l *Lib) Close(f cm.FlowID) {
	l.checkEpoch()
	l.stats.Syscalls++
	l.cm.Close(f)
	delete(l.sendCBs, f)
	delete(l.updateCBs, f)
	delete(l.pendingStatus, f)
	delete(l.updateSeq, f)
	delete(l.queuedSeq, f)
}

// MTU returns the flow's MTU (cm_mtu); the value is cached by real libcm so
// no crossing is charged.
func (l *Lib) MTU(f cm.FlowID) int { return l.cm.MTU(f) }

// RegisterSend registers the application's cmapp_send callback.
func (l *Lib) RegisterSend(f cm.FlowID, cb cm.SendCallback) {
	l.checkEpoch()
	l.sendCBs[f] = cb
	l.cm.RegisterSend(f, cb)
}

// RegisterUpdate registers the application's cmapp_update callback.
func (l *Lib) RegisterUpdate(f cm.FlowID, cb cm.UpdateCallback) {
	l.checkEpoch()
	l.updateCBs[f] = cb
	l.cm.RegisterUpdate(f, cb)
}

// Request asks for permission to send (cm_request); one ioctl.
func (l *Lib) Request(f cm.FlowID) {
	l.checkEpoch()
	l.stats.Ioctls++
	l.cm.Request(f)
}

// BulkRequest requests permission for several flows with a single ioctl
// (cm_bulk_request, §5 Optimizations).
func (l *Lib) BulkRequest(flows []cm.FlowID) {
	l.checkEpoch()
	l.stats.Ioctls++
	l.cm.BulkRequest(flows)
}

// Notify charges an actual transmission to the flow (cm_notify); one ioctl.
// Connected sockets normally do not need it because the kernel attributes the
// transmission automatically — this is the extra cost of the ALF/noconnect
// variant in Table 1.
func (l *Lib) Notify(f cm.FlowID, nsent int) {
	l.checkEpoch()
	l.stats.Ioctls++
	l.cm.Notify(f, nsent)
}

// Update reports receiver feedback (cm_update); one ioctl.
func (l *Lib) Update(f cm.FlowID, nsent, nrecd int, mode cm.LossMode, rtt time.Duration) {
	l.checkEpoch()
	l.stats.Ioctls++
	l.cm.Update(f, nsent, nrecd, mode, rtt)
}

// BulkUpdate reports feedback for several flows with a single ioctl.
func (l *Lib) BulkUpdate(updates []cm.UpdateArgs) {
	l.checkEpoch()
	l.stats.Ioctls++
	l.cm.BulkUpdate(updates)
}

// Query reads the flow's network state (cm_query); one ioctl.
func (l *Lib) Query(f cm.FlowID) (cm.Status, bool) {
	l.checkEpoch()
	l.stats.Ioctls++
	return l.cm.Query(f)
}

// Thresh sets rate-callback thresholds (cm_thresh); one ioctl.
func (l *Lib) Thresh(f cm.FlowID, down, up float64) {
	l.checkEpoch()
	l.stats.Ioctls++
	l.cm.Thresh(f, down, up)
}

// SetWeight sets the flow's scheduling weight; one ioctl.
func (l *Lib) SetWeight(f cm.FlowID, w float64) {
	l.checkEpoch()
	l.stats.Ioctls++
	l.cm.SetWeight(f, w)
}

// DeliverSend implements cm.Dispatcher: the kernel marks the control socket's
// write bit and records the flow as ready to send. The application callback
// runs later, when the socket is drained. A fault injector may drop the
// notification (the grant dies and is reclaimed by the CM's grant timeout; a
// robust application re-requests) or delay it.
func (l *Lib) DeliverSend(f cm.FlowID, _ cm.SendCallback) {
	if l.injector != nil {
		switch l.injector.verdict() {
		case faultDrop:
			l.injector.stats.DroppedSends++
			return
		case faultDelay:
			l.injector.stats.DelayedSends++
			simtime.NewKindTimer(l.timers, simtime.KindCMNotify, func() {
				l.pendingSend = append(l.pendingSend, f)
				l.becameReady()
			}).Reset(l.injector.delay)
			return
		}
	}
	l.pendingSend = append(l.pendingSend, f)
	l.becameReady()
}

// DeliverUpdate implements cm.Dispatcher: the kernel marks the exception bit;
// only the most recent status matters if several changes pile up (§2.2.2).
// Deliveries are stamped with a per-flow generation so that a fault-delayed
// status arriving after a newer one is discarded as stale rather than
// applied over it.
func (l *Lib) DeliverUpdate(f cm.FlowID, st cm.Status, _ cm.UpdateCallback) {
	l.updateSeq[f]++
	seq := l.updateSeq[f]
	if l.injector != nil {
		switch l.injector.verdict() {
		case faultDrop:
			l.injector.stats.DroppedUpdates++
			return
		case faultDelay:
			l.injector.stats.DelayedUpdates++
			simtime.NewKindTimer(l.timers, simtime.KindCMNotify, func() {
				l.queueStatus(f, st, seq)
			}).Reset(l.injector.delay)
			return
		}
	}
	l.queueStatus(f, st, seq)
}

// queueStatus admits one status delivery to the pending map unless a newer
// generation for the flow has already been queued (stale reordered delivery).
func (l *Lib) queueStatus(f cm.FlowID, st cm.Status, seq uint64) {
	if seq < l.queuedSeq[f] {
		if l.injector != nil {
			l.injector.stats.StaleUpdatesDropped++
		}
		return
	}
	l.queuedSeq[f] = seq
	l.pendingStatus[f] = st
	l.becameReady()
}

func (l *Lib) becameReady() {
	switch l.mode {
	case ModeAuto:
		if !l.dispatchScheduled {
			l.dispatchScheduled = true
			l.dispatchTimer.Reset(0)
		}
	case ModeSignal:
		if l.signalHandler != nil && !l.signalPending {
			l.signalPending = true
			l.stats.Signals++
			l.signalHandler()
		}
	case ModeManual:
		// The application will poll Ready/Dispatch on its own schedule.
	}
}

// Ready reports whether the control socket would select as readable: some
// flow may send or some flow's network conditions changed. The check itself
// is free (the descriptor is already in the application's select set).
func (l *Lib) Ready() bool {
	return len(l.pendingSend) > 0 || len(l.pendingStatus) > 0
}

// Dispatch drains the control socket and invokes application callbacks:
// one select wake-up, one ioctl returning every flow that may send (batched),
// and one ioctl per flow whose status changed. It returns the number of
// callbacks delivered.
func (l *Lib) Dispatch() int {
	l.checkEpoch()
	l.signalPending = false
	if !l.Ready() {
		return 0
	}
	l.stats.Dispatches++
	l.stats.Selects++

	delivered := 0

	// Drain the send list with a single ioctl.
	if len(l.pendingSend) > 0 {
		l.stats.Ioctls++
		batch := l.pendingSend
		l.pendingSend = nil
		if len(batch) > l.stats.MaxSendBatch {
			l.stats.MaxSendBatch = len(batch)
		}
		for _, f := range batch {
			cb := l.sendCBs[f]
			if cb == nil {
				continue
			}
			l.stats.SendCallbacks++
			delivered++
			cb(f)
		}
	}

	// Status updates: one ioctl per flow, returning only the current state.
	// Flows drain in ID order so delivery order is deterministic (map
	// iteration order must not leak into the simulation).
	if len(l.pendingStatus) > 0 {
		statuses := l.pendingStatus
		l.pendingStatus = make(map[cm.FlowID]cm.Status)
		order := make([]cm.FlowID, 0, len(statuses))
		for f := range statuses {
			order = append(order, f)
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		for _, f := range order {
			l.stats.Ioctls++
			cb := l.updateCBs[f]
			if cb == nil {
				continue
			}
			l.stats.UpdateCallbacks++
			delivered++
			cb(f, statuses[f])
		}
	}

	// Callbacks may have generated new notifications (for example a send
	// callback that requested again and was granted immediately); in auto
	// mode schedule another pass rather than recursing.
	if l.Ready() {
		l.becameReady()
	}
	return delivered
}

var _ cm.Dispatcher = (*Lib)(nil)
