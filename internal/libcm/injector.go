package libcm

import (
	"math/rand"
	"time"
)

// InjectorStats counts notifications the fault injector interfered with.
type InjectorStats struct {
	DroppedSends   int64
	DelayedSends   int64
	DroppedUpdates int64
	DelayedUpdates int64
	// StaleUpdatesDropped counts delayed cmapp_update deliveries that libcm
	// discarded on arrival because a newer status had already been queued —
	// the reordering guard a real kernel/user boundary needs.
	StaleUpdatesDropped int64
}

// Injector is a seeded per-host fault source for the kernel→user notification
// path: each DeliverSend/DeliverUpdate crossing is independently dropped with
// probability DropRate or delayed by Delay with probability DelayRate. One
// injector is shared by every Lib on a host so the host's fault process is a
// single deterministic RNG stream; rates are adjusted mid-run by the
// set-notify-faults dynamics event.
type Injector struct {
	rng       *rand.Rand
	dropRate  float64
	delayRate float64
	delay     time.Duration
	stats     InjectorStats
}

// NewInjector creates an injector with its own seeded RNG. With both rates
// zero it passes every notification through (but still consumes no
// randomness, so enabling faults mid-run is deterministic).
func NewInjector(seed int64) *Injector {
	if seed == 0 {
		seed = 1
	}
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// SetRates updates the drop/delay probabilities and the delay applied to
// delayed notifications. Rates are clamped to [0, 1].
func (in *Injector) SetRates(drop, delayRate float64, delay time.Duration) {
	in.dropRate = clamp01(drop)
	in.delayRate = clamp01(delayRate)
	if delay < 0 {
		delay = 0
	}
	in.delay = delay
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Stats returns a copy of the fault counters.
func (in *Injector) Stats() InjectorStats { return in.stats }

type faultVerdict int

const (
	faultDeliver faultVerdict = iota
	faultDrop
	faultDelay
)

// verdict draws the fate of one notification. No randomness is consumed
// while the injector is fully disabled, so a host with no fault events
// behaves identically whether or not an injector is installed.
func (in *Injector) verdict() faultVerdict {
	if in.dropRate == 0 && in.delayRate == 0 {
		return faultDeliver
	}
	r := in.rng.Float64()
	if r < in.dropRate {
		return faultDrop
	}
	if r < in.dropRate+in.delayRate {
		return faultDelay
	}
	return faultDeliver
}
