package scenario

import (
	"fmt"
	"time"

	"repro/internal/dynamics"
	"repro/internal/netsim"
)

// DumbbellParams parameterises the canonical shared-bottleneck topology.
type DumbbellParams struct {
	// Senders and Receivers are the leaf counts on each side.
	Senders   int
	Receivers int
	// FlowsPerPair is the number of concurrent connections from each sender
	// to each of its destinations.
	FlowsPerPair int
	// CrossProduct sends from every sender to every receiver; otherwise
	// sender i sends only to receiver i mod Receivers.
	CrossProduct bool
	// CC selects the congestion controller of all workloads.
	CC string
	// Bottleneck configures the shared link; zero fields get the defaults of
	// a 10 Mbps / 20 ms / 120-packet pipe.
	Bottleneck netsim.LinkConfig
	// AccessBandwidth is the edge-link rate (default 100 Mbps, fast enough
	// that the shared link is the bottleneck).
	AccessBandwidth netsim.Bandwidth
	// Bytes per flow (0 = stream for the whole run).
	Bytes    int
	Duration time.Duration
	Seed     int64
}

func (p *DumbbellParams) fillDefaults() {
	if p.Senders <= 0 {
		p.Senders = 2
	}
	if p.Receivers <= 0 {
		p.Receivers = 2
	}
	if p.FlowsPerPair <= 0 {
		p.FlowsPerPair = 1
	}
	if p.CC == "" {
		p.CC = CCCM
	}
	if p.Bottleneck.Bandwidth == 0 {
		p.Bottleneck.Bandwidth = 10 * netsim.Mbps
	}
	if p.Bottleneck.Delay == 0 {
		p.Bottleneck.Delay = 20 * time.Millisecond
	}
	if p.Bottleneck.QueuePackets == 0 && p.Bottleneck.QueueBytes == 0 {
		p.Bottleneck.QueuePackets = 120
	}
	if p.AccessBandwidth == 0 {
		p.AccessBandwidth = 100 * netsim.Mbps
	}
	if p.Duration <= 0 {
		p.Duration = 20 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

// Dumbbell builds N senders and M receivers joined through two routers and
// one shared bottleneck link:
//
//	s0..sN-1 -- left -- bottleneck -- right -- d0..dM-1
//
// It is the topology behind the paper's ensemble-sharing argument: all flows
// crossing the bottleneck share its queue, and each sender's CM aggregates
// its flows per destination.
func Dumbbell(p DumbbellParams) Spec {
	p.fillDefaults()
	access := netsim.LinkConfig{
		Bandwidth:    p.AccessBandwidth,
		Delay:        250 * time.Microsecond,
		QueuePackets: 300,
	}
	spec := Spec{
		Name: "dumbbell",
		Description: fmt.Sprintf("%d senders and %d receivers behind one shared %s bottleneck",
			p.Senders, p.Receivers, p.Bottleneck.Bandwidth),
		Routers:  []string{"left", "right"},
		Duration: p.Duration,
		Seed:     p.Seed,
	}
	bn := p.Bottleneck
	bn.Name = "bottleneck"
	spec.Links = append(spec.Links, LinkSpec{A: "left", B: "right", LinkConfig: bn})
	for i := 0; i < p.Senders; i++ {
		spec.Links = append(spec.Links, LinkSpec{A: sname(i), B: "left", LinkConfig: access})
	}
	for j := 0; j < p.Receivers; j++ {
		spec.Links = append(spec.Links, LinkSpec{A: "right", B: dname(j), LinkConfig: access})
	}
	kind := KindStream
	if p.Bytes > 0 {
		kind = KindBulk
	}
	for i := 0; i < p.Senders; i++ {
		if p.CrossProduct {
			for j := 0; j < p.Receivers; j++ {
				spec.Workloads = append(spec.Workloads, Workload{
					Kind: kind, From: sname(i), To: dname(j),
					Flows: p.FlowsPerPair, Bytes: p.Bytes, CC: p.CC,
				})
			}
		} else {
			spec.Workloads = append(spec.Workloads, Workload{
				Kind: kind, From: sname(i), To: dname(i % p.Receivers),
				Flows: p.FlowsPerPair, Bytes: p.Bytes, CC: p.CC,
			})
		}
	}
	return spec
}

func sname(i int) string { return fmt.Sprintf("s%d", i) }
func dname(j int) string { return fmt.Sprintf("d%d", j) }

// ParkingLotParams parameterises the multi-bottleneck chain.
type ParkingLotParams struct {
	// Hops is the number of router-to-router links in the chain (>= 2).
	Hops int
	// CC selects the congestion controller of all workloads.
	CC string
	// HopBandwidth is the rate of each chain link (default 10 Mbps).
	HopBandwidth netsim.Bandwidth
	Duration     time.Duration
	Seed         int64
}

// ParkingLot builds the classic chain of H hops with one long flow crossing
// every hop and one short cross-flow per hop:
//
//	long:  src -- r0 -- r1 -- ... -- rH -- dst
//	short: xi  -- ri -- r(i+1) -- yi      (one per hop)
//
// The long flow competes with fresh traffic at every router queue, the
// standard stress test for multi-hop congestion control.
func ParkingLot(p ParkingLotParams) Spec {
	if p.Hops < 2 {
		p.Hops = 3
	}
	if p.CC == "" {
		p.CC = CCCM
	}
	if p.HopBandwidth == 0 {
		p.HopBandwidth = 10 * netsim.Mbps
	}
	if p.Duration <= 0 {
		p.Duration = 20 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	hop := netsim.LinkConfig{
		Bandwidth:    p.HopBandwidth,
		Delay:        5 * time.Millisecond,
		QueuePackets: 100,
	}
	access := netsim.LinkConfig{
		Bandwidth:    100 * netsim.Mbps,
		Delay:        250 * time.Microsecond,
		QueuePackets: 300,
	}
	spec := Spec{
		Name:        "parkinglot",
		Description: fmt.Sprintf("parking lot: one long flow over %d hops vs per-hop cross traffic", p.Hops),
		Duration:    p.Duration,
		Seed:        p.Seed,
	}
	rname := func(i int) string { return fmt.Sprintf("r%d", i) }
	for i := 0; i <= p.Hops; i++ {
		spec.Routers = append(spec.Routers, rname(i))
	}
	for i := 0; i < p.Hops; i++ {
		spec.Links = append(spec.Links, LinkSpec{A: rname(i), B: rname(i + 1), LinkConfig: hop})
	}
	spec.Links = append(spec.Links,
		LinkSpec{A: "src", B: rname(0), LinkConfig: access},
		LinkSpec{A: rname(p.Hops), B: "dst", LinkConfig: access},
	)
	spec.Workloads = append(spec.Workloads, Workload{
		Kind: KindStream, From: "src", To: "dst", CC: p.CC,
	})
	for i := 0; i < p.Hops; i++ {
		x, y := fmt.Sprintf("x%d", i), fmt.Sprintf("y%d", i)
		spec.Links = append(spec.Links,
			LinkSpec{A: x, B: rname(i), LinkConfig: access},
			LinkSpec{A: rname(i + 1), B: y, LinkConfig: access},
		)
		spec.Workloads = append(spec.Workloads, Workload{
			Kind: KindStream, From: x, To: y, CC: p.CC,
		})
	}
	return spec
}

// StarParams parameterises the hub-and-spoke topology.
type StarParams struct {
	// Leaves is the number of spoke hosts (>= 3).
	Leaves int
	// CC selects the congestion controller of all workloads.
	CC string
	// SpokeBandwidth is the per-spoke rate (default 10 Mbps).
	SpokeBandwidth netsim.Bandwidth
	// Bytes per flow (0 = stream).
	Bytes    int
	Duration time.Duration
	Seed     int64
}

// Star builds N leaf hosts around one hub router, with each leaf sending to
// the next (li -> l(i+1) mod N), so every flow crosses two spoke links and
// contends at the hub. A server-like concentration pattern appears at each
// leaf's uplink.
func Star(p StarParams) Spec {
	if p.Leaves < 3 {
		p.Leaves = 4
	}
	if p.CC == "" {
		p.CC = CCCM
	}
	if p.SpokeBandwidth == 0 {
		p.SpokeBandwidth = 10 * netsim.Mbps
	}
	if p.Duration <= 0 {
		p.Duration = 20 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	spoke := netsim.LinkConfig{
		Bandwidth:    p.SpokeBandwidth,
		Delay:        5 * time.Millisecond,
		QueuePackets: 100,
	}
	spec := Spec{
		Name:        "star",
		Description: fmt.Sprintf("%d leaves around one hub router, each streaming to its neighbour", p.Leaves),
		Routers:     []string{"hub"},
		Duration:    p.Duration,
		Seed:        p.Seed,
	}
	lname := func(i int) string { return fmt.Sprintf("l%d", i) }
	kind := KindStream
	if p.Bytes > 0 {
		kind = KindBulk
	}
	for i := 0; i < p.Leaves; i++ {
		spec.Links = append(spec.Links, LinkSpec{A: lname(i), B: "hub", LinkConfig: spoke})
	}
	for i := 0; i < p.Leaves; i++ {
		spec.Workloads = append(spec.Workloads, Workload{
			Kind: kind, From: lname(i), To: lname((i + 1) % p.Leaves),
			Bytes: p.Bytes, CC: p.CC,
		})
	}
	return spec
}

// WirelessParams parameterises the wireless-like bursty-loss path.
type WirelessParams struct {
	// Bandwidth and OneWayDelay describe the channel (default 4 Mbps, 10 ms).
	Bandwidth   netsim.Bandwidth
	OneWayDelay time.Duration
	// Gilbert is the ambient bursty loss process (default: rare fades with a
	// mean burst of four packets dropping 50%).
	Gilbert netsim.GilbertElliott
	// FadeAt / FadeUntil bracket a scheduled deep fade during which the Bad
	// state dominates; zero values default to 8 s and 13 s. FadeAt < 0
	// disables the fade events.
	FadeAt    time.Duration
	FadeUntil time.Duration
	Duration  time.Duration
	Seed      int64
}

// Wireless builds sender<->receiver over a bursty (Gilbert-Elliott) channel
// carrying one CM-managed TCP stream and one layered UDP stream in the
// rate-callback mode. A scheduled deep fade makes the channel much worse
// mid-run and then restores it, so the trace shows both transports backing
// off and recovering — the wireless story the paper's adaptation section
// assumes.
func Wireless(p WirelessParams) Spec {
	if p.Bandwidth == 0 {
		p.Bandwidth = 4 * netsim.Mbps
	}
	if p.OneWayDelay <= 0 {
		p.OneWayDelay = 10 * time.Millisecond
	}
	if p.Gilbert == (netsim.GilbertElliott{}) {
		p.Gilbert = netsim.GilbertElliott{PGoodBad: 0.002, PBadGood: 0.25, LossBad: 0.5}
	}
	if p.FadeAt == 0 {
		p.FadeAt = 8 * time.Second
	}
	if p.FadeUntil <= p.FadeAt {
		p.FadeUntil = p.FadeAt + 5*time.Second
	}
	if p.Duration <= 0 {
		p.Duration = 20 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	spec := Spec{
		Name: "wireless",
		Description: fmt.Sprintf("bursty-loss %s channel with a scheduled deep fade at %v",
			p.Bandwidth, p.FadeAt),
		Links: []LinkSpec{{A: "sender", B: "receiver", LinkConfig: netsim.LinkConfig{
			Bandwidth:    p.Bandwidth,
			Delay:        p.OneWayDelay,
			QueuePackets: 100,
			Gilbert:      &p.Gilbert,
		}}},
		Workloads: []Workload{
			{Kind: KindStream, From: "sender", To: "receiver", CC: CCCM},
			{Kind: KindUDPRate, From: "sender", To: "receiver"},
		},
		Duration: p.Duration,
		Seed:     p.Seed,
	}
	if p.FadeAt >= 0 {
		fade := netsim.GilbertElliott{PGoodBad: 0.05, PBadGood: 0.08, LossBad: 0.9}
		restore := p.Gilbert
		spec.Events = []dynamics.Event{
			{At: p.FadeAt, Kind: dynamics.SetGilbert, Link: 0, Gilbert: &fade},
			{At: p.FadeUntil, Kind: dynamics.SetGilbert, Link: 0, Gilbert: &restore},
		}
	}
	return spec
}

// AsymmetricParams parameterises the bandwidth-asymmetric path.
type AsymmetricParams struct {
	// Forward and Reverse are the two directions' rates (defaults 10 Mbps
	// and 128 Kbps — an ADSL-like ack-constrained path).
	Forward, Reverse netsim.Bandwidth
	// SqueezeAt halves the reverse channel mid-run (0 defaults to 10 s;
	// negative disables the event).
	SqueezeAt time.Duration
	Duration  time.Duration
	Seed      int64
}

// Asymmetric builds a point-to-point path whose reverse direction is orders
// of magnitude slower than the forward one, declared as a time-zero dynamics
// event on the duplex (per-direction parameters are link events, not static
// spec fields). CM-managed bulk flows forward are ack-clocked through the
// constrained reverse channel, which a scheduled squeeze then halves.
func Asymmetric(p AsymmetricParams) Spec {
	if p.Forward == 0 {
		p.Forward = 10 * netsim.Mbps
	}
	if p.Reverse == 0 {
		p.Reverse = 128 * netsim.Kbps
	}
	if p.SqueezeAt == 0 {
		p.SqueezeAt = 10 * time.Second
	}
	if p.Duration <= 0 {
		p.Duration = 20 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	spec := Spec{
		Name: "asymmetric",
		Description: fmt.Sprintf("%s forward / %s reverse ack-constrained path",
			p.Forward, p.Reverse),
		Links: []LinkSpec{{A: "sender", B: "receiver", LinkConfig: netsim.LinkConfig{
			Bandwidth:    p.Forward,
			Delay:        15 * time.Millisecond,
			QueuePackets: 120,
		}}},
		Workloads: []Workload{
			{Kind: KindStream, From: "sender", To: "receiver", Flows: 2, CC: CCCM},
		},
		Events: []dynamics.Event{
			{At: 0, Kind: dynamics.SetBandwidth, Link: 0, Direction: dynamics.DirReverse, Bandwidth: p.Reverse},
		},
		Duration: p.Duration,
		Seed:     p.Seed,
	}
	if p.SqueezeAt >= 0 {
		spec.Events = append(spec.Events, dynamics.Event{
			At: p.SqueezeAt, Kind: dynamics.SetBandwidth, Link: 0,
			Direction: dynamics.DirReverse, Bandwidth: p.Reverse / 2,
		})
	}
	return spec
}

// FlakyDumbbellParams parameterises the dumbbell with a scheduled bottleneck
// outage.
type FlakyDumbbellParams struct {
	Dumbbell DumbbellParams
	// DownAt / UpAt bracket the bottleneck outage (defaults 6 s and 10 s).
	DownAt, UpAt time.Duration
}

// FlakyDumbbell is the dumbbell with its shared bottleneck scheduled to fail
// and recover mid-run: CM macroflows collapse when the path disappears
// (timeouts report persistent congestion) and probe back up after the link
// returns — the adaptation-under-failure acceptance scenario.
func FlakyDumbbell(p FlakyDumbbellParams) Spec {
	if p.DownAt <= 0 {
		p.DownAt = 6 * time.Second
	}
	if p.UpAt <= p.DownAt {
		p.UpAt = p.DownAt + 4*time.Second
	}
	spec := Dumbbell(p.Dumbbell)
	spec.Name = "flaky-dumbbell"
	spec.Description = fmt.Sprintf("dumbbell whose bottleneck fails at %v and recovers at %v", p.DownAt, p.UpAt)
	// The bottleneck is always Links[0] in the Dumbbell builder.
	spec.Events = []dynamics.Event{
		{At: p.DownAt, Kind: dynamics.LinkDown, Link: 0},
		{At: p.UpAt, Kind: dynamics.LinkUp, Link: 0},
	}
	return spec
}

// GridParams parameterises the cluster-grid topology: an R×C grid of routers
// joined by long-delay backbone links, each router the hub of a small
// cluster of leaf hosts on short access links.
type GridParams struct {
	// Rows and Cols shape the router grid (default 4×4).
	Rows, Cols int
	// HostsPerCluster is the leaf count per router (default 3, making the
	// default topology 16 routers + 48 hosts = 64 nodes).
	HostsPerCluster int
	// AccessBandwidth / AccessDelay describe the host-router links (defaults
	// 20 Mbps, 1 ms) — slow enough that each cluster's local stream congests
	// its own access pipe, a miniature dumbbell per cluster.
	AccessBandwidth netsim.Bandwidth
	AccessDelay     time.Duration
	// BackboneBandwidth / BackboneDelay describe the router-router links
	// (defaults 10 Mbps, 10 ms). The backbone delay dominates every
	// cross-cluster path, which is what gives a sharded run its lookahead:
	// partitioning cuts only backbone links.
	BackboneBandwidth netsim.Bandwidth
	BackboneDelay     time.Duration
	// CC selects the congestion controller of all workloads (default CM).
	CC       string
	Duration time.Duration
	Seed     int64
}

// DumbbellGrid builds the cluster grid: within every cluster, host 0 streams
// to host 1 for the whole run, and the last host sends a staggered bulk
// transfer to host 0 of the next cluster (wrapping), so backbone links carry
// real transit traffic. With its many mostly-independent clusters joined by
// high-delay links it is the reference workload for sharded execution
// (`BenchmarkShardedDumbbellGrid`): delay-weighted partitioning keeps whole
// clusters on one shard and the 10 ms backbone becomes the lookahead.
func DumbbellGrid(p GridParams) Spec {
	if p.Rows <= 0 {
		p.Rows = 4
	}
	if p.Cols <= 0 {
		p.Cols = 4
	}
	if p.HostsPerCluster < 2 {
		p.HostsPerCluster = 3
	}
	if p.AccessBandwidth == 0 {
		p.AccessBandwidth = 20 * netsim.Mbps
	}
	if p.AccessDelay <= 0 {
		p.AccessDelay = time.Millisecond
	}
	if p.BackboneBandwidth == 0 {
		p.BackboneBandwidth = 10 * netsim.Mbps
	}
	if p.BackboneDelay <= 0 {
		p.BackboneDelay = 10 * time.Millisecond
	}
	if p.CC == "" {
		p.CC = CCCM
	}
	if p.Duration <= 0 {
		p.Duration = 10 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	clusters := p.Rows * p.Cols
	access := netsim.LinkConfig{
		Bandwidth:    p.AccessBandwidth,
		Delay:        p.AccessDelay,
		QueuePackets: 100,
	}
	backbone := netsim.LinkConfig{
		Bandwidth:    p.BackboneBandwidth,
		Delay:        p.BackboneDelay,
		QueuePackets: 120,
	}
	spec := Spec{
		Name: "grid",
		Description: fmt.Sprintf("%d×%d cluster grid (%d nodes): per-cluster streams plus cross-cluster transfers",
			p.Rows, p.Cols, clusters*(1+p.HostsPerCluster)),
		Duration: p.Duration,
		Seed:     p.Seed,
	}
	rname := func(c int) string { return fmt.Sprintf("r%d", c) }
	hname := func(c, i int) string { return fmt.Sprintf("c%dh%d", c, i) }
	for c := 0; c < clusters; c++ {
		spec.Routers = append(spec.Routers, rname(c))
		for i := 0; i < p.HostsPerCluster; i++ {
			spec.Links = append(spec.Links, LinkSpec{A: hname(c, i), B: rname(c), LinkConfig: access})
		}
	}
	for row := 0; row < p.Rows; row++ {
		for col := 0; col < p.Cols; col++ {
			c := row*p.Cols + col
			if col+1 < p.Cols {
				spec.Links = append(spec.Links, LinkSpec{A: rname(c), B: rname(c + 1), LinkConfig: backbone})
			}
			if row+1 < p.Rows {
				spec.Links = append(spec.Links, LinkSpec{A: rname(c), B: rname(c + p.Cols), LinkConfig: backbone})
			}
		}
	}
	for c := 0; c < clusters; c++ {
		spec.Workloads = append(spec.Workloads, Workload{
			Kind: KindStream, From: hname(c, 0), To: hname(c, 1), CC: p.CC,
		})
		// Staggered cross-cluster transfers keep the backbone busy without
		// every cluster dialing in lockstep at t=0.
		spec.Workloads = append(spec.Workloads, Workload{
			Kind: KindBulk, From: hname(c, p.HostsPerCluster-1), To: hname((c+1)%clusters, 0),
			Bytes: 1 << 20, CC: p.CC,
			Start: time.Duration(c+1) * 50 * time.Millisecond,
		})
	}
	return spec
}

// WebMixParams parameterises the background web-mix scenario.
type WebMixParams struct {
	// Requests is the total number of web requests in the mix (default 48).
	Requests int
	// RatePerSec is the mean Poisson arrival rate (default 12 req/s).
	RatePerSec float64
	// MeanBytes is the mean response size (default 12 KB).
	MeanBytes int
	// CC selects the mix's congestion controller (default CM, which makes
	// the mix one shared macroflow — the paper's ensemble of short flows).
	CC string
	// Bottleneck configures the shared link (Dumbbell defaults apply).
	Bottleneck netsim.LinkConfig
	Duration   time.Duration
	Seed       int64
}

// WebMix builds a dumbbell whose first sender runs a web-like request mix —
// many short Poisson-arrival request/response flows — against a long-lived
// native TCP stream from the second sender. It is the "background web-like
// request mix" workload of the roadmap: with CC = cm every short request
// joins the sender's macroflow to d0 and inherits its congestion state
// instead of slow-starting from scratch.
func WebMix(p WebMixParams) Spec {
	if p.Requests <= 0 {
		p.Requests = 48
	}
	if p.RatePerSec <= 0 {
		p.RatePerSec = 12
	}
	if p.MeanBytes <= 0 {
		p.MeanBytes = 12 << 10
	}
	if p.CC == "" {
		p.CC = CCCM
	}
	spec := Dumbbell(DumbbellParams{
		Senders: 2, Receivers: 2,
		Bottleneck: p.Bottleneck,
		Duration:   p.Duration,
		Seed:       p.Seed,
	})
	spec.Name = "webmix"
	spec.Description = fmt.Sprintf("web-like request mix (%d Poisson requests at %.3g/s, mean %d B) vs one long native stream",
		p.Requests, p.RatePerSec, p.MeanBytes)
	spec.Workloads = []Workload{
		{Kind: KindWebMix, From: sname(0), To: dname(0),
			Flows: p.Requests, Rate: p.RatePerSec, Bytes: p.MeanBytes, CC: p.CC},
		{Kind: KindStream, From: sname(1), To: dname(1), CC: CCNative},
	}
	return spec
}

// PointToPointParams parameterises the two-host topology every experiment in
// the paper's evaluation uses.
type PointToPointParams struct {
	Sender, Receiver string
	Link             netsim.LinkConfig
	// Workloads is optional; Build-only users (the experiment runners)
	// attach their own traffic programmatically.
	Workloads []Workload
	Duration  time.Duration
	// WithCM installs a Congestion Manager on the sender even when no
	// declarative workload asks for one.
	WithCM bool
	Seed   int64
}

// PointToPoint builds sender<->receiver joined by one duplex link.
func PointToPoint(p PointToPointParams) Spec {
	if p.Sender == "" {
		p.Sender = "sender"
	}
	if p.Receiver == "" {
		p.Receiver = "receiver"
	}
	if p.Link.Bandwidth == 0 {
		p.Link.Bandwidth = 10 * netsim.Mbps
	}
	if p.Link.QueuePackets == 0 && p.Link.QueueBytes == 0 {
		p.Link.QueuePackets = 120
	}
	if p.Duration <= 0 {
		p.Duration = 30 * time.Second
	}
	spec := Spec{
		Name:        "p2p",
		Description: fmt.Sprintf("point-to-point %s path", p.Link.Bandwidth),
		Links:       []LinkSpec{{A: p.Sender, B: p.Receiver, LinkConfig: p.Link}},
		Workloads:   p.Workloads,
		Duration:    p.Duration,
		Seed:        p.Seed,
	}
	if p.WithCM {
		spec.CMHosts = []string{p.Sender}
	}
	return spec
}

// ChurnParams parameterises the host-churn soak scenario: a small dumbbell
// under every class of fault at once — link flaps, CM restarts, dropped and
// delayed notifications, and a mobile receiver.
type ChurnParams struct {
	// RestartMean is the mean inter-restart time of s0's CM (default 3 s).
	RestartMean time.Duration
	// DropRate / DelayRate / Delay configure s1's notification faults
	// (defaults 0.05, 0.10 and 20 ms).
	DropRate  float64
	DelayRate float64
	Delay     time.Duration
	// MoveAt / Outage schedule d1's address change (defaults 2 s and 400 ms,
	// early enough that shortened CI runs still exercise both halves).
	MoveAt time.Duration
	Outage time.Duration
	// FlapMeanUp / FlapMeanDown drive the bottleneck's Poisson flaps
	// (defaults 4 s up, 300 ms down).
	FlapMeanUp   time.Duration
	FlapMeanDown time.Duration
	Duration     time.Duration
	Seed         int64
}

func (p *ChurnParams) fillDefaults() {
	if p.RestartMean <= 0 {
		p.RestartMean = 3 * time.Second
	}
	if p.DropRate == 0 {
		p.DropRate = 0.05
	}
	if p.DelayRate == 0 {
		p.DelayRate = 0.10
	}
	if p.Delay <= 0 {
		p.Delay = 20 * time.Millisecond
	}
	if p.MoveAt <= 0 {
		p.MoveAt = 2 * time.Second
	}
	if p.Outage <= 0 {
		p.Outage = 400 * time.Millisecond
	}
	if p.FlapMeanUp <= 0 {
		p.FlapMeanUp = 4 * time.Second
	}
	if p.FlapMeanDown <= 0 {
		p.FlapMeanDown = 300 * time.Millisecond
	}
	if p.Duration <= 0 {
		p.Duration = 12 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

// Churn builds the host-fault soak scenario:
//
//	s0, s1 -- left -- bottleneck -- right -- d0, d1
//
// s0 drives TCP CM traffic (a backlogged stream plus repeated bulk
// transfers) while its CM is crash-restarted by a Poisson process; s1 drives
// both layered UDP applications through a notification path that drops and
// delays grants and rate callbacks; the bottleneck flaps; and d1 changes
// address mid-run, killing in-flight packets and (policy "discard")
// congestion state about it. Every fault class of docs/ROBUSTNESS.md fires
// in one run, which is what makes it the soak-harness workload: if an
// invariant can break, this is where.
//
// Sweep axes rely on stable positions: Events[0] is s1's set-notify-faults
// and Generators[1] is s0's cm-restarts.
func Churn(p ChurnParams) Spec {
	p.fillDefaults()
	access := netsim.LinkConfig{
		Bandwidth:    100 * netsim.Mbps,
		Delay:        2 * time.Millisecond,
		QueuePackets: 300,
	}
	spec := Spec{
		Name: "churn",
		Description: fmt.Sprintf("dumbbell under host churn: CM restarts every ~%v, %.0f%%/%.0f%% notify drop/delay, bottleneck flaps, d1 moves at %v",
			p.RestartMean, p.DropRate*100, p.DelayRate*100, p.MoveAt),
		Routers:  []string{"left", "right"},
		CMHosts:  []string{"s0", "s1"},
		Duration: p.Duration,
		Seed:     p.Seed,
	}
	spec.Links = append(spec.Links,
		LinkSpec{A: "left", B: "right", LinkConfig: netsim.LinkConfig{
			Name:         "bottleneck",
			Bandwidth:    10 * netsim.Mbps,
			Delay:        20 * time.Millisecond,
			QueuePackets: 120,
		}},
		LinkSpec{A: "s0", B: "left", LinkConfig: access},
		LinkSpec{A: "s1", B: "left", LinkConfig: access},
		LinkSpec{A: "right", B: "d0", LinkConfig: access},
		LinkSpec{A: "right", B: "d1", LinkConfig: access},
	)
	spec.Workloads = []Workload{
		{Kind: KindStream, From: "s0", To: "d0", CC: CCCM},
		{Kind: KindBulk, From: "s0", To: "d0", Flows: 2, Bytes: 1 << 20, CC: CCCM},
		{Kind: KindUDPALF, From: "s1", To: "d1"},
		{Kind: KindUDPRate, From: "s1", To: "d1"},
	}
	spec.Events = []dynamics.Event{
		{At: 0, Kind: dynamics.SetNotifyFaults, Host: "s1",
			DropRate: p.DropRate, DelayRate: p.DelayRate, Delay: p.Delay},
		{At: p.MoveAt, Kind: dynamics.HostMove, Host: "d1", Outage: p.Outage},
	}
	spec.Generators = []dynamics.Generator{
		{Kind: dynamics.GenPoissonFlaps, Link: 0, MeanUp: p.FlapMeanUp, MeanDown: p.FlapMeanDown},
		{Kind: dynamics.GenCMRestarts, Host: "s0", Mean: p.RestartMean},
	}
	return spec
}
