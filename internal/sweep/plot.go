package sweep

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Plot declares one figure rendered from an executed campaign: a metric on Y
// against one numeric sweep axis on X, one line per value of an optional
// string (variant) axis, with mean ± stddev error bars across replicates.
//
// Rendering is a pure function of the CampaignResult — fixed canvas, fixed
// palette, shortest-round-trip float formatting — so the emitted SVG bytes
// are deterministic and diffable, the same property the CSV/JSON emitters
// guarantee.
type Plot struct {
	// Metric is the flattened metric key to plot (e.g.
	// "total.throughput_kbps" or "probe.link[0].queue_depth.mean").
	Metric string `json:"metric"`
	// X names the numeric axis providing the X coordinate. Default: the
	// campaign's first numeric axis.
	X string `json:"x,omitempty"`
	// Series names the string axis that splits points into one line each
	// (the paired-variant axis, e.g. workload[0].cc). Default: the
	// campaign's first string axis, if any; otherwise a single series.
	Series string `json:"series,omitempty"`
	// File is the output filename (default: the metric, sanitised, + ".svg").
	File string `json:"file,omitempty"`
	// Title overrides the default "<metric> vs <x>" title.
	Title string `json:"title,omitempty"`
}

// plotPalette is the fixed series colour cycle.
var plotPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
}

// Canvas geometry (pixels). Fixed so the output is reproducible.
const (
	plotW       = 640
	plotH       = 400
	plotLeft    = 70
	plotRight   = 620
	plotTop     = 40
	plotBottom  = 350
	plotLegendX = 480
)

// defaultPlots derives the campaign's figures when none are declared: one
// plot per explicitly named (non-wildcard) metric, or failing that one per
// campaign probe's mean, or failing that the canonical whole-run pair
// (goodput and retransmissions) — so an ad-hoc CLI sweep always renders
// something useful.
func (c Campaign) defaultPlots() []Plot {
	var out []Plot
	metrics := c.Metrics
	if len(metrics) == 0 {
		metrics = DefaultMetrics
	}
	for _, m := range metrics {
		if !strings.Contains(m, "*") {
			out = append(out, Plot{Metric: m})
		}
	}
	if len(out) == 0 {
		for _, p := range c.Probes {
			out = append(out, Plot{Metric: "probe." + p.Target + ".mean"})
		}
	}
	if len(out) == 0 {
		out = []Plot{{Metric: "total.goodput_kbps"}, {Metric: "total.retransmissions"}}
	}
	return out
}

// resolve fills a plot's defaults against the campaign's axes and validates
// the axis references.
func (c Campaign) resolvePlot(p Plot) (Plot, error) {
	if p.Metric == "" {
		return p, fmt.Errorf("sweep: plot without a metric")
	}
	if p.X == "" {
		for _, a := range c.Axes {
			if a.numeric() {
				p.X = a.Param
				break
			}
		}
		if p.X == "" {
			return p, fmt.Errorf("sweep: plot %q: campaign has no numeric axis for X", p.Metric)
		}
	}
	if p.Series == "" {
		for _, a := range c.Axes {
			if !a.numeric() {
				p.Series = a.Param
				break
			}
		}
	}
	found := false
	for _, a := range c.Axes {
		if a.Param == p.X {
			if !a.numeric() {
				return p, fmt.Errorf("sweep: plot %q: X axis %q is a string axis", p.Metric, p.X)
			}
			found = true
		}
	}
	if !found {
		return p, fmt.Errorf("sweep: plot %q: no axis %q", p.Metric, p.X)
	}
	if p.File == "" {
		p.File = sanitizeFile(p.Metric) + ".svg"
	}
	if p.Title == "" {
		p.Title = p.Metric + " vs " + p.X
	}
	return p, nil
}

// sanitizeFile maps a metric key to a safe filename stem.
func sanitizeFile(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}

// WritePlots renders the campaign's declared plots (or the derived defaults)
// from an executed result into dir, one SVG per plot, and returns the written
// filenames in plot order.
func (c Campaign) WritePlots(res *CampaignResult, dir string) ([]string, error) {
	plots := c.Plots
	if len(plots) == 0 {
		plots = c.defaultPlots()
	}
	var files []string
	for _, p := range plots {
		rp, err := c.resolvePlot(p)
		if err != nil {
			return files, err
		}
		svg, err := c.RenderSVG(res, rp)
		if err != nil {
			return files, err
		}
		path := filepath.Join(dir, rp.File)
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			return files, err
		}
		files = append(files, rp.File)
	}
	return files, nil
}

// plotSeries is one rendered line: label plus (x, mean, stddev) samples in
// sweep order.
type plotSeries struct {
	label string
	xs    []float64
	means []float64
	devs  []float64
}

// RenderSVG renders one resolved plot from an executed campaign as an SVG
// document. Points whose replicates all failed, or that lack the metric, are
// skipped (a campaign-level cap or failure thus shows as a gap, not an
// error).
func (c Campaign) RenderSVG(res *CampaignResult, p Plot) (string, error) {
	p, err := c.resolvePlot(p)
	if err != nil {
		return "", err
	}
	xIdx, seriesIdx := -1, -1
	for i, param := range res.Params {
		if param == p.X {
			xIdx = i
		}
		if p.Series != "" && param == p.Series {
			seriesIdx = i
		}
	}
	if xIdx < 0 {
		return "", fmt.Errorf("sweep: plot %q: result has no param %q", p.Metric, p.X)
	}
	logX := false
	for _, a := range c.Axes {
		if a.Param == p.X && a.Scale == ScaleLog {
			logX = true
		}
	}

	// Group points into series, preserving expansion order within each.
	var order []string
	byLabel := map[string]*plotSeries{}
	for i := range res.Points {
		pt := &res.Points[i]
		s, ok := pt.Metrics[p.Metric]
		if !ok || s.N == 0 {
			continue
		}
		label := ""
		if seriesIdx >= 0 {
			label = pt.Values[seriesIdx].String()
		}
		ps := byLabel[label]
		if ps == nil {
			ps = &plotSeries{label: label}
			byLabel[label] = ps
			order = append(order, label)
		}
		ps.xs = append(ps.xs, pt.Values[xIdx].Num)
		ps.means = append(ps.means, s.Mean)
		ps.devs = append(ps.devs, s.Stddev)
	}
	if len(order) == 0 {
		return "", fmt.Errorf("sweep: plot %q: no point carries the metric", p.Metric)
	}

	// Data ranges. X comes from the swept values; Y spans mean ± stddev and
	// is extended to zero when everything is non-negative, so magnitudes
	// read honestly.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, label := range order {
		ps := byLabel[label]
		for i := range ps.xs {
			xmin = math.Min(xmin, ps.xs[i])
			xmax = math.Max(xmax, ps.xs[i])
			ymin = math.Min(ymin, ps.means[i]-ps.devs[i])
			ymax = math.Max(ymax, ps.means[i]+ps.devs[i])
		}
	}
	if ymin > 0 {
		ymin = 0
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	ymax += (ymax - ymin) * 0.05
	tx := func(x float64) float64 {
		lo, hi, v := xmin, xmax, x
		if logX {
			lo, hi, v = math.Log10(xmin), math.Log10(xmax), math.Log10(x)
		}
		if hi == lo {
			return (plotLeft + plotRight) / 2
		}
		return plotLeft + (v-lo)/(hi-lo)*(plotRight-plotLeft)
	}
	ty := func(y float64) float64 {
		return plotBottom - (y-ymin)/(ymax-ymin)*(plotBottom-plotTop)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="12">`+"\n",
		plotW, plotH, plotW, plotH)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="22" font-size="14" text-anchor="middle">%s</text>`+"\n",
		(plotLeft+plotRight)/2, xmlEscape(p.Title))

	// X ticks at the swept values themselves (sweep axes have few steps, and
	// the actual coordinates matter more than round numbers).
	seenX := map[float64]bool{}
	var xticks []float64
	for _, label := range order {
		for _, x := range byLabel[label].xs {
			if !seenX[x] {
				seenX[x] = true
				xticks = append(xticks, x)
			}
		}
	}
	sort.Float64s(xticks)
	for _, x := range xticks {
		px := tx(x)
		fmt.Fprintf(&b, `<line x1="%s" y1="%d" x2="%s" y2="%d" stroke="#ddd"/>`+"\n",
			coord(px), plotTop, coord(px), plotBottom)
		fmt.Fprintf(&b, `<text x="%s" y="%d" text-anchor="middle">%s</text>`+"\n",
			coord(px), plotBottom+18, tickLabel(x))
	}
	// Five evenly spaced Y ticks.
	for i := 0; i <= 4; i++ {
		y := ymin + (ymax-ymin)*float64(i)/4
		py := ty(y)
		fmt.Fprintf(&b, `<line x1="%d" y1="%s" x2="%d" y2="%s" stroke="#ddd"/>`+"\n",
			plotLeft, coord(py), plotRight, coord(py))
		fmt.Fprintf(&b, `<text x="%d" y="%s" text-anchor="end">%s</text>`+"\n",
			plotLeft-6, coord(py+4), tickLabel(y))
	}
	// Axis frame and labels.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		plotLeft, plotBottom, plotRight, plotBottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		plotLeft, plotTop, plotLeft, plotBottom)
	xlabel := p.X
	if logX {
		xlabel += " (log)"
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
		(plotLeft+plotRight)/2, plotBottom+38, xmlEscape(xlabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		(plotTop+plotBottom)/2, (plotTop+plotBottom)/2, xmlEscape(p.Metric))

	for si, label := range order {
		ps := byLabel[label]
		color := plotPalette[si%len(plotPalette)]
		// Error bars first so the line draws over them.
		for i := range ps.xs {
			if ps.devs[i] <= 0 {
				continue
			}
			px := tx(ps.xs[i])
			y1, y2 := ty(ps.means[i]-ps.devs[i]), ty(ps.means[i]+ps.devs[i])
			fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="%s" stroke-width="1"/>`+"\n",
				coord(px), coord(y1), coord(px), coord(y2), color)
			for _, y := range []float64{y1, y2} {
				fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="%s" stroke-width="1"/>`+"\n",
					coord(px-3), coord(y), coord(px+3), coord(y), color)
			}
		}
		var pts []string
		for i := range ps.xs {
			pts = append(pts, coord(tx(ps.xs[i]))+","+coord(ty(ps.means[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.Join(pts, " "), color)
		for i := range ps.xs {
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="2.5" fill="%s"/>`+"\n",
				coord(tx(ps.xs[i])), coord(ty(ps.means[i])), color)
		}
		if ps.label != "" {
			ly := plotTop + 8 + si*16
			fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1.5"/>`+"\n",
				plotLegendX, ly, plotLegendX+18, ly, color)
			fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n",
				plotLegendX+24, ly+4, xmlEscape(ps.label))
		}
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// coord formats a pixel coordinate with two decimals — fixed-width enough to
// be stable, short enough to keep files small.
func coord(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// tickLabel formats a tick value compactly (4 significant digits).
func tickLabel(v float64) string { return strconv.FormatFloat(v, 'g', 4, 64) }

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
