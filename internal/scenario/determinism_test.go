package scenario

import (
	"encoding/json"
	"reflect"
	"testing"
)

// batch returns a mixed workload: every registered scenario twice, so the
// parallel runner interleaves different simulations on shared workers.
func batch(t *testing.T) []Spec {
	t.Helper()
	var specs []Spec
	for _, name := range List() {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, spec, spec)
	}
	return specs
}

// TestSerialAndParallelRunsAreByteIdentical is the determinism acceptance
// check: each simulation owns its scheduler and seeded random sources, so a
// batch fanned across 8 workers must produce exactly the results of a serial
// run — compared both structurally and on the JSON wire encoding.
func TestSerialAndParallelRunsAreByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every registered scenario twice, twice over")
	}
	serial := Runner{Parallel: 1}.RunAll(batch(t))
	parallel := Runner{Parallel: 8}.RunAll(batch(t))

	for i := range serial {
		if serial[i].Err != "" || parallel[i].Err != "" {
			t.Fatalf("outcome %d errored: serial=%q parallel=%q", i, serial[i].Err, parallel[i].Err)
		}
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("serial and parallel result structs differ")
	}
	sj, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if string(sj) != string(pj) {
		t.Fatal("serial and parallel JSON encodings differ")
	}
}

// TestRepeatedRunsAreIdentical pins the weaker property the one above builds
// on: running the same spec twice in the same process gives the same result.
func TestRepeatedRunsAreIdentical(t *testing.T) {
	spec, err := Lookup("dumbbell")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two runs of the same spec differ")
	}
}
