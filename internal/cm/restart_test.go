package cm

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/simtime"
)

func restartAddrs(port int) (netsim.Addr, netsim.Addr) {
	return netsim.Addr{Host: "client", Port: 20000 + port}, netsim.Addr{Host: "server", Port: port}
}

func TestRestartWipesFlowsAndBumpsEpoch(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s, s, WithMTU(1000))
	if c.Epoch() != 0 {
		t.Fatalf("fresh CM epoch = %d", c.Epoch())
	}
	src, dst := restartAddrs(80)
	f := c.Open(netsim.ProtoUDP, src, dst)
	var grants int
	c.RegisterSend(f, func(FlowID) { grants++ })
	c.Request(f)
	if grants != 1 {
		t.Fatalf("grants before restart = %d", grants)
	}

	if wiped := c.Restart(); wiped != 1 {
		t.Fatalf("Restart wiped %d flows, want 1", wiped)
	}
	if c.Epoch() != 1 || c.FlowCount() != 0 || c.MacroflowCount() != 0 {
		t.Fatalf("post-restart state: epoch=%d flows=%d macroflows=%d",
			c.Epoch(), c.FlowCount(), c.MacroflowCount())
	}
	acct := c.Accounting()
	if acct.Restarts != c.Epoch() {
		t.Fatalf("Restarts %d != epoch %d", acct.Restarts, c.Epoch())
	}
}

func TestStaleHandleCallsMissAndAreCounted(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s, s, WithMTU(1000))
	src, dst := restartAddrs(81)
	old := c.Open(netsim.ProtoUDP, src, dst)
	c.Restart()

	// Every API entry point called with the dead handle must be a counted
	// no-op, never a panic or a hit on a new flow.
	c.RegisterSend(old, func(FlowID) { t.Error("grant delivered to a dead handle") })
	c.Request(old)
	c.Notify(old, 100)
	c.Update(old, 100, 100, NoLoss, time.Millisecond)
	c.SetWeight(old, 2)
	if _, ok := c.Query(old); ok {
		t.Fatal("Query succeeded on a dead handle")
	}
	c.Close(old)
	if got := c.Accounting().StaleFlowCalls; got < 6 {
		t.Fatalf("StaleFlowCalls = %d, want >= 6", got)
	}

	// A new flow opened after the restart must get a FlowID the old epoch
	// never saw, so the stale calls above cannot have touched it.
	fresh := c.Open(netsim.ProtoUDP, src, dst)
	if fresh == old {
		t.Fatal("FlowID reused across restart")
	}
	if _, ok := c.Query(fresh); !ok {
		t.Fatal("fresh flow unusable")
	}
}

// TestGrantConservationAcrossRestart pins the churn-soak conservation
// invariant at the unit level: issued == reclaimed + outstanding before,
// across and after a restart that strands grants mid-flight.
func TestGrantConservationAcrossRestart(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s, s, WithMTU(1000))
	conserve := func(when string) {
		t.Helper()
		acct, audit := c.Accounting(), c.Audit()
		if acct.GrantsIssued != acct.GrantsReclaimed+int64(audit.OutstandingGrants) {
			t.Fatalf("%s: issued %d != reclaimed %d + outstanding %d",
				when, acct.GrantsIssued, acct.GrantsReclaimed, audit.OutstandingGrants)
		}
	}

	src, dst := restartAddrs(82)
	f := c.Open(netsim.ProtoUDP, src, dst)
	c.RegisterSend(f, func(FlowID) {}) // hold the grant: never claim or decline
	c.Request(f)
	conserve("grant outstanding")

	c.Restart()
	conserve("after restart") // the held grant must be accounted reclaimed

	f2 := c.Open(netsim.ProtoUDP, src, dst)
	c.RegisterSend(f2, func(FlowID) {})
	c.Request(f2)
	c.Notify(f2, 1000)
	conserve("after post-restart traffic")

	audit := c.Audit()
	if audit.NegativePending != 0 || audit.StrandedFlows != 0 {
		t.Fatalf("audit flagged a healthy CM: %+v", audit)
	}
}

func TestMacroflowResetKeepsFlowsButForgetsState(t *testing.T) {
	s := simtime.NewScheduler()
	c := New(s, s, WithMTU(1000))
	src, dst := restartAddrs(83)
	f := c.Open(netsim.ProtoUDP, src, dst)
	// Teach the macroflow some state: full request/claim/feedback cycles so
	// the controller grows the window and learns an RTT estimate.
	c.RegisterSend(f, func(id FlowID) {
		c.Notify(id, 1000)
		c.Update(id, 1000, 1000, NoLoss, 50*time.Millisecond)
	})
	for i := 0; i < 40; i++ {
		c.Request(f)
	}
	before, _ := c.Query(f)
	if before.SRTT == 0 {
		t.Fatal("no RTT learned; test premise broken")
	}
	if before.CWND <= 1000 {
		t.Fatalf("window never grew (CWND %d); test premise broken", before.CWND)
	}

	if n := c.ResetMacroflows("server"); n != 1 {
		t.Fatalf("ResetMacroflows reset %d, want 1", n)
	}
	if c.FlowCount() != 1 {
		t.Fatal("reset must not close flows")
	}
	after, ok := c.Query(f)
	if !ok {
		t.Fatal("flow unusable after reset")
	}
	if after.SRTT != 0 {
		t.Fatalf("SRTT survived the reset: %v", after.SRTT)
	}
	if after.CWND >= before.CWND {
		t.Fatalf("window did not shrink to initial: before %d, after %d", before.CWND, after.CWND)
	}
	if c.Accounting().MacroflowResets != 1 {
		t.Fatalf("MacroflowResets = %d", c.Accounting().MacroflowResets)
	}
	if n := c.ResetMacroflows("elsewhere"); n != 0 {
		t.Fatalf("reset for an unknown host touched %d macroflows", n)
	}
}
