package probe

import (
	"fmt"
	"path"
	"sort"
	"strconv"
	"strings"
	"time"
)

// DefaultInterval is the sampling period of a probe that leaves Interval
// zero. 250 ms matches the coarsest granularity visible in the paper's
// adaptation figures and is deliberately much larger than any link delay, so
// a probe's self-rescheduling event never ties a packet delivery on both
// time and insertion stamp (see the determinism note in internal/scenario).
const DefaultInterval = 250 * time.Millisecond

// Spec declares one mid-run sampling probe. The target path addresses the
// sampled quantity; see ParseTarget for the grammar.
type Spec struct {
	// Target is the probe path, e.g. "link[0].queue_depth", "cm[s0].rate",
	// "host[d1].received_bytes" or "shard.lookahead".
	Target string `json:"target"`
	// Interval is the sampling period (DefaultInterval when zero). The first
	// sample is taken one interval into the run and the last at the interval
	// multiple that is <= the scenario duration.
	Interval time.Duration `json:"interval,omitempty"`
	// Name overrides the series name (default: the target path).
	Name string `json:"name,omitempty"`
}

// SeriesName returns the name the probe's series will carry.
func (p Spec) SeriesName() string {
	if p.Name != "" {
		return p.Name
	}
	return p.Target
}

// Target kinds.
const (
	TargetLink  = "link"
	TargetHost  = "host"
	TargetCM    = "cm"
	TargetShard = "shard"
	// TargetLinks and TargetHosts are the aggregate families: a glob over
	// directional link names (node names), sampled as the sum of the field
	// across every match.
	TargetLinks = "links"
	TargetHosts = "hosts"
)

// Target is a parsed probe path.
type Target struct {
	// Kind is TargetLink, TargetHost, TargetCM, TargetShard, TargetLinks or
	// TargetHosts.
	Kind string
	// Index is the Spec.Links index of a TargetLink (forward direction).
	Index int
	// Host is the host name of a TargetHost or TargetCM.
	Host string
	// Pattern is the path.Match glob of an aggregate target (TargetLinks
	// matches directional link names like "a<->b-fwd", TargetHosts node
	// names).
	Pattern string
	// Field is the sampled quantity.
	Field string
}

// linkFields, hostFields, cmFields and shardFields are the valid Field sets
// per target kind (documented in docs/OBSERVABILITY.md).
var (
	linkFields = map[string]bool{
		"queue_depth":     true, // packets queued right now
		"sent_packets":    true,
		"sent_bytes":      true,
		"delivered_bytes": true, // sampled on the receiving host's shard
		"drops":           true, // queue + loss + burst + down drops
		"utilization":     true, // busy fraction of elapsed virtual time
	}
	hostFields = map[string]bool{
		"sent_packets":       true,
		"sent_bytes":         true,
		"received_packets":   true,
		"received_bytes":     true,
		"forwarded_packets":  true,
		"no_route_drops":     true, // sender-side: no route for the destination
		"route_miss_drops":   true, // transit packet died at a non-forwarding leaf
		"forward_miss_drops": true, // transit packet died at a router with no entry
		"ttl_expired_drops":  true, // hop budget exhausted: the routing-loop symptom
	}
	// Aggregate (links.* / hosts.*) fields: the summable subset — gauges that
	// add meaningfully (queue_depth) and monotonic counters, but not ratios
	// like utilization.
	linksAggFields = map[string]bool{
		"queue_depth":     true,
		"sent_packets":    true,
		"sent_bytes":      true,
		"delivered_bytes": true,
		"drops":           true,
	}
	hostsAggFields = hostFields
	cmFields = map[string]bool{
		"rate":        true, // sum of macroflow rates, bytes/s
		"cwnd":        true, // sum of macroflow congestion windows, bytes
		"srtt":        true, // max macroflow smoothed RTT, seconds
		"loss_rate":   true, // max macroflow loss rate
		"outstanding": true, // sum of outstanding (granted, unreported) bytes
		"flows":       true,
		"macroflows":  true,
	}
	shardFields = map[string]bool{
		"count":     true,
		"lookahead": true, // seconds
	}
)

// ParseTarget parses a probe path. The grammar mirrors the sweep axis
// language:
//
//	link[<index>].<field>   index into Spec.Links (forward direction)
//	host[<name>].<field>    a node by name
//	cm[<host>].<field>      the Congestion Manager on a host
//	shard.<field>           the sharded-execution plan
//	links.<glob>.<field>    sum of <field> over every directional link whose
//	                        name matches the path.Match glob ("*p0*-fwd")
//	hosts.<glob>.<field>    sum of <field> over every node name matching
//	                        the glob ("h*.e0.p0")
//
// Host names may themselves contain dots and brackets-free suffixes
// ("h0.e1.p2"), so the field is whatever follows the bracket's closing "]".
// In the aggregate families the field is the segment after the last dot;
// everything between the kind and the field is the glob (globs and names may
// contain dots, fields never do).
func ParseTarget(s string) (Target, error) {
	if open := strings.IndexByte(s, '['); open >= 0 {
		closing := strings.IndexByte(s, ']')
		if closing < open {
			return Target{}, fmt.Errorf("probe target %q: unbalanced brackets", s)
		}
		t := Target{Kind: s[:open]}
		arg := s[open+1 : closing]
		rest := s[closing+1:]
		if !strings.HasPrefix(rest, ".") || len(rest) < 2 {
			return Target{}, fmt.Errorf("probe target %q: missing field after %q", s, s[:closing+1])
		}
		t.Field = rest[1:]
		switch t.Kind {
		case TargetLink:
			idx, err := strconv.Atoi(arg)
			if err != nil || idx < 0 {
				return Target{}, fmt.Errorf("probe target %q: link index %q must be a non-negative integer", s, arg)
			}
			t.Index = idx
			return t, checkField(s, t.Field, linkFields)
		case TargetHost:
			if arg == "" {
				return Target{}, fmt.Errorf("probe target %q: empty host name", s)
			}
			t.Host = arg
			return t, checkField(s, t.Field, hostFields)
		case TargetCM:
			if arg == "" {
				return Target{}, fmt.Errorf("probe target %q: empty host name", s)
			}
			t.Host = arg
			return t, checkField(s, t.Field, cmFields)
		default:
			return Target{}, fmt.Errorf("probe target %q: unknown kind %q (want link, host, cm or shard)", s, t.Kind)
		}
	}
	kind, rest, ok := strings.Cut(s, ".")
	if !ok || rest == "" {
		return Target{}, fmt.Errorf("probe target %q: want link[i].<field>, host[name].<field>, cm[host].<field>, shard.<field>, links.<glob>.<field> or hosts.<glob>.<field>", s)
	}
	switch kind {
	case TargetShard:
		t := Target{Kind: TargetShard, Field: rest}
		return t, checkField(s, rest, shardFields)
	case TargetLinks, TargetHosts:
		dot := strings.LastIndexByte(rest, '.')
		if dot <= 0 || dot == len(rest)-1 {
			return Target{}, fmt.Errorf("probe target %q: want %s.<glob>.<field>", s, kind)
		}
		t := Target{Kind: kind, Pattern: rest[:dot], Field: rest[dot+1:]}
		if _, err := path.Match(t.Pattern, ""); err != nil {
			return Target{}, fmt.Errorf("probe target %q: bad glob %q: %w", s, t.Pattern, err)
		}
		fields := linksAggFields
		if kind == TargetHosts {
			fields = hostsAggFields
		}
		return t, checkField(s, t.Field, fields)
	}
	return Target{}, fmt.Errorf("probe target %q: unknown kind %q (want link, host, cm, shard, links or hosts)", s, kind)
}

func checkField(target, field string, valid map[string]bool) error {
	if valid[field] {
		return nil
	}
	names := make([]string, 0, len(valid))
	for f := range valid {
		names = append(names, f)
	}
	sort.Strings(names)
	return fmt.Errorf("probe target %q: unknown field %q (valid: %s)", target, field, strings.Join(names, ", "))
}
