package scenario

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/netsim"
)

// oracleRouter is a test-local reimplementation of the original map-based
// routing: full BFS from every source with first-mention tie-breaking and a
// parent-pointer walk-back for the first hop. The route engine must match it
// exactly — tables and changed-entry counts — whatever sequence of link
// flips happened in between.
type oracleRouter struct {
	nodes     []string
	linkFrom  map[string]map[string]*netsim.Link
	neighbors map[string][]string
	tables    map[string]map[string]*netsim.Link
}

func newOracle(sim *Sim) *oracleRouter {
	o := &oracleRouter{
		linkFrom:  make(map[string]map[string]*netsim.Link),
		neighbors: make(map[string][]string),
		tables:    make(map[string]map[string]*netsim.Link),
	}
	seen := make(map[string]bool)
	addNode := func(name string) {
		if !seen[name] {
			seen[name] = true
			o.nodes = append(o.nodes, name)
		}
	}
	add := func(from, to string, l *netsim.Link) {
		if o.linkFrom[from] == nil {
			o.linkFrom[from] = make(map[string]*netsim.Link)
		}
		o.linkFrom[from][to] = l
		o.neighbors[from] = append(o.neighbors[from], to)
	}
	for i, ls := range sim.Spec.Links {
		addNode(ls.A)
		addNode(ls.B)
		d := sim.Duplex(i)
		add(ls.A, ls.B, d.Forward)
		add(ls.B, ls.A, d.Reverse)
	}
	return o
}

func (o *oracleRouter) routesFrom(src string) map[string]*netsim.Link {
	parent := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range o.neighbors[u] {
			if o.linkFrom[u][v].IsDown() {
				continue
			}
			if _, ok := parent[v]; !ok {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	table := make(map[string]*netsim.Link)
	for _, dst := range o.nodes {
		if dst == src {
			continue
		}
		if _, ok := parent[dst]; !ok {
			continue
		}
		hop := dst
		for parent[hop] != src {
			hop = parent[hop]
		}
		table[dst] = o.linkFrom[src][hop]
	}
	return table
}

// recompute rebuilds every table from scratch and returns the total changed
// count under InstallRoutes semantics (added, removed or repointed entries).
func (o *oracleRouter) recompute() int {
	changed := 0
	for _, src := range o.nodes {
		table := o.routesFrom(src)
		old := o.tables[src]
		for dst, l := range table {
			if prev, ok := old[dst]; !ok || prev != l {
				changed++
			}
		}
		for dst := range old {
			if _, ok := table[dst]; !ok {
				changed++
			}
		}
		o.tables[src] = table
	}
	return changed
}

// checkAgainstOracle compares every host's RouteTo against the oracle's
// current tables for every destination.
func checkAgainstOracle(t *testing.T, sim *Sim, o *oracleRouter) {
	t.Helper()
	for _, src := range o.nodes {
		h := sim.Host(src)
		for _, dst := range o.nodes {
			if dst == src {
				continue
			}
			if got, want := h.RouteTo(dst), o.tables[src][dst]; got != want {
				t.Fatalf("route %s->%s: engine %v, oracle %v", src, dst, linkName(got), linkName(want))
			}
		}
	}
}

func linkName(l *netsim.Link) string {
	if l == nil {
		return "<none>"
	}
	return l.Config().Name
}

// TestIncrementalRecomputeMatchesFullBFSOracle is the equivalence fuzz test
// for exact-mode incremental recomputation: random connected topologies,
// random directional link-flip sequences, and after every flip the engine's
// tables AND changed-entry count must equal a from-scratch full-BFS oracle.
func TestIncrementalRecomputeMatchesFullBFSOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	link := netsim.LinkConfig{Bandwidth: 10 * netsim.Mbps, Delay: time.Millisecond, QueuePackets: 20}
	for iter := 0; iter < 25; iter++ {
		n := 5 + rng.Intn(20)
		name := func(i int) string { return fmt.Sprintf("n%d", i) }
		spec := Spec{Name: "route-fuzz", Duration: time.Second}
		type pair struct{ a, b int }
		used := make(map[pair]bool)
		addLink := func(a, b int) {
			if a == b || used[pair{a, b}] || used[pair{b, a}] {
				return
			}
			used[pair{a, b}] = true
			spec.Links = append(spec.Links, LinkSpec{A: name(a), B: name(b), LinkConfig: link})
		}
		// A random spanning tree keeps the graph connected; extra random
		// edges add the redundancy that makes rerouting interesting.
		for i := 1; i < n; i++ {
			addLink(rng.Intn(i), i)
		}
		for j := rng.Intn(n + 1); j > 0; j-- {
			addLink(rng.Intn(n), rng.Intn(n))
		}
		for i := 0; i < n; i++ {
			spec.Routers = append(spec.Routers, name(i))
		}
		sim, err := Build(spec)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		oracle := newOracle(sim)
		oracle.recompute()
		checkAgainstOracle(t, sim, oracle)

		for step := 0; step < 40; step++ {
			d := sim.Duplex(rng.Intn(len(spec.Links)))
			down := rng.Intn(2) == 0
			switch rng.Intn(3) {
			case 0:
				d.Forward.SetDown(down)
			case 1:
				d.Reverse.SetDown(down)
			default:
				d.Forward.SetDown(down)
				d.Reverse.SetDown(down)
			}
			got := sim.recomputeRoutes()
			want := oracle.recompute()
			if got != want {
				t.Fatalf("iter %d step %d: engine changed %d entries, oracle %d", iter, step, got, want)
			}
			checkAgainstOracle(t, sim, oracle)
		}
	}
}

// TestExactRoutingMatchesOracleOnCannedScenarios pins byte-identity of the
// interned route engine against the original map-based BFS on every
// registered exact-routing scenario, serial and sharded.
func TestExactRoutingMatchesOracleOnCannedScenarios(t *testing.T) {
	for _, name := range List() {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Routing == RoutingHier {
			continue
		}
		for _, shards := range []int{0, 4} {
			spec.Shards = shards
			sim, err := Build(spec)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			oracle := newOracle(sim)
			oracle.recompute()
			checkAgainstOracle(t, sim, oracle)
		}
	}
}

// nextHopNode resolves which node a link leads to, via the engine's interned
// adjacency.
func nextHopNode(t *testing.T, sim *Sim, l *netsim.Link) string {
	t.Helper()
	e := sim.routing
	for k, al := range e.adjLink {
		if al == l {
			return e.names[e.adjTo[k]]
		}
	}
	t.Fatalf("link %s not in adjacency", linkName(l))
	return ""
}

// walkRoute follows RouteTo hop by hop from src to dst, failing on a down
// link, a missing route, or a loop (more hops than nodes). It returns the
// hop count.
func walkRoute(t *testing.T, sim *Sim, src, dst string) int {
	t.Helper()
	cur := src
	for hops := 0; hops <= len(sim.routing.names); hops++ {
		if cur == dst {
			return hops
		}
		l := sim.Host(cur).RouteTo(dst)
		if l == nil {
			t.Fatalf("walk %s->%s: no route at %s after %d hops", src, dst, cur, hops)
		}
		if l.IsDown() {
			t.Fatalf("walk %s->%s: down link at %s after %d hops", src, dst, cur, hops)
		}
		cur = nextHopNode(t, sim, l)
	}
	t.Fatalf("walk %s->%s: routing loop", src, dst)
	return 0
}

// bfsDistance is the hop-count oracle for hier delivery checks.
func bfsDistance(o *oracleRouter, src, dst string) int {
	dist := map[string]int{src: 0}
	queue := []string{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			return dist[u]
		}
		for _, v := range o.neighbors[u] {
			if o.linkFrom[u][v].IsDown() {
				continue
			}
			if _, ok := dist[v]; !ok {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return -1
}

// leafHosts returns the spec's non-router nodes in first-mention order.
func leafHosts(sim *Sim) []string {
	var hosts []string
	for _, name := range sim.Nodes() {
		if !sim.Host(name).Forwarding() {
			hosts = append(hosts, name)
		}
	}
	return hosts
}

// TestHierRoutingDeliversShortestPaths checks hierarchical routing end to
// end on both canned hierarchical topologies: every host pair's RouteTo walk
// reaches the destination in exactly the BFS-shortest hop count — no loops,
// no stretch — even though no node holds more than its children and a
// default route.
func TestHierRoutingDeliversShortestPaths(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec func() (Spec, error)
	}{
		{"fattree-k4", func() (Spec, error) { return FatTree(FatTreeParams{K: 4}) }},
		{"fattree-k6-thin", func() (Spec, error) { return FatTree(FatTreeParams{K: 6, HostsPerEdge: 1}) }},
		{"isp-small", func() (Spec, error) { return ISP(ISPParams{Aggs: 3, AccessPerAgg: 2, HostsPerAccess: 2, Servers: 2}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := tc.spec()
			if err != nil {
				t.Fatal(err)
			}
			spec.Workloads = nil
			sim, err := Build(spec)
			if err != nil {
				t.Fatal(err)
			}
			oracle := newOracle(sim)
			hosts := leafHosts(sim)
			if len(hosts) < 4 {
				t.Fatalf("only %d hosts", len(hosts))
			}
			for _, src := range hosts {
				for _, dst := range hosts {
					if src == dst {
						continue
					}
					hops := walkRoute(t, sim, src, dst)
					if want := bfsDistance(oracle, src, dst); hops != want {
						t.Fatalf("%s->%s took %d hops, shortest is %d", src, dst, hops, want)
					}
				}
			}
		})
	}
}

// checkSameRoutes compares every (src, dst) next hop between two builds of
// the same spec by link name (the builds hold distinct Link pointers).
func checkSameRoutes(t *testing.T, a, b *Sim) {
	t.Helper()
	nodes := a.Nodes()
	for _, src := range nodes {
		ha, hb := a.Host(src), b.Host(src)
		for _, dst := range nodes {
			if dst == src {
				continue
			}
			if got, want := linkName(ha.RouteTo(dst)), linkName(hb.RouteTo(dst)); got != want {
				t.Fatalf("route %s->%s diverged: %s vs %s", src, dst, got, want)
			}
		}
	}
}

// TestHierIncrementalFlapsMatchFreshBuild drives a random sequence of
// directional link flips through the hierarchical incremental path and,
// after every batch, compares the full routing state against a fresh build
// that receives the same final down-state in one step. Any staleness in the
// per-node incremental rebuild (mirror drift, missed endpoints) diverges.
func TestHierIncrementalFlapsMatchFreshBuild(t *testing.T) {
	spec, err := FatTree(FatTreeParams{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	spec.Workloads = nil
	sim, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	down := make(map[int]bool) // directional state: 2*link+0 fwd, 2*link+1 rev
	for round := 0; round < 12; round++ {
		for flips := 1 + rng.Intn(3); flips > 0; flips-- {
			li := rng.Intn(len(spec.Links))
			rev := rng.Intn(2)
			d := sim.Duplex(li)
			l := d.Forward
			if rev == 1 {
				l = d.Reverse
			}
			state := !down[2*li+rev]
			down[2*li+rev] = state
			l.SetDown(state)
		}
		if sim.recomputeRoutes() == 0 && round == 0 {
			t.Fatal("first flip batch changed no routes")
		}
		fresh, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		for key, state := range down {
			d := fresh.Duplex(key / 2)
			if key%2 == 0 {
				d.Forward.SetDown(state)
			} else {
				d.Reverse.SetDown(state)
			}
		}
		fresh.recomputeRoutes()
		checkSameRoutes(t, sim, fresh)
	}
}

// TestHierEdgeUplinkFailureReroutes pins the local-repair story: when an
// edge switch loses one aggregation uplink, hosts beneath it still reach
// every other host (the default route rotates to a surviving uplink), and
// restoring the link restores the original paths everywhere.
func TestHierEdgeUplinkFailureReroutes(t *testing.T) {
	spec, err := FatTree(FatTreeParams{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	spec.Workloads = nil
	sim, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	hosts := leafHosts(sim)
	baseline := make(map[string]int)
	for _, src := range hosts {
		for _, dst := range hosts {
			if src != dst {
				baseline[src+">"+dst] = walkRoute(t, sim, src, dst)
			}
		}
	}
	// Fail the uplink that e0.p0's default actually uses, so the reroute is
	// exercised for real.
	def := sim.Host("e0.p0").RouteTo("h0.e0.p1")
	li := -1
	for i, ls := range spec.Links {
		d := sim.Duplex(i)
		if d.Forward == def || d.Reverse == def {
			if ls.A == "e0.p0" || ls.B == "e0.p0" {
				li = i
			}
		}
	}
	if li < 0 {
		t.Fatalf("could not find e0.p0's default uplink %s", linkName(def))
	}
	sim.Duplex(li).Forward.SetDown(true)
	sim.Duplex(li).Reverse.SetDown(true)
	if changed := sim.recomputeRoutes(); changed == 0 {
		t.Fatal("uplink failure changed no routes")
	}
	// Every host under the degraded edge switch still reaches every host.
	for _, src := range []string{"h0.e0.p0", "h1.e0.p0"} {
		for _, dst := range hosts {
			if src != dst {
				walkRoute(t, sim, src, dst)
			}
		}
	}
	sim.Duplex(li).Forward.SetDown(false)
	sim.Duplex(li).Reverse.SetDown(false)
	if changed := sim.recomputeRoutes(); changed == 0 {
		t.Fatal("uplink recovery changed no routes")
	}
	for _, src := range hosts {
		for _, dst := range hosts {
			if src != dst {
				if hops := walkRoute(t, sim, src, dst); hops != baseline[src+">"+dst] {
					t.Fatalf("%s->%s: %d hops after recovery, baseline %d", src, dst, hops, baseline[src+">"+dst])
				}
			}
		}
	}
}

// TestHierSpecValidation covers the declarative guard rails of hierarchical
// routing: mode typos, missing or non-router roots, stray hier fields on
// exact specs, and non-hierarchical topologies.
func TestHierSpecValidation(t *testing.T) {
	link := netsim.LinkConfig{QueuePackets: 10}
	base := func() Spec {
		return Spec{
			Name: "hier-bad",
			Links: []LinkSpec{
				{A: "r", B: "a", LinkConfig: link},
				{A: "r", B: "b", LinkConfig: link},
			},
			Routers: []string{"r"},
		}
	}
	s := base()
	s.Routing = "weird"
	s.fillDefaults()
	if err := s.Validate(); err == nil {
		t.Fatal("unknown routing mode accepted")
	}
	s = base()
	s.Routing = RoutingHier
	s.fillDefaults()
	if err := s.Validate(); err == nil {
		t.Fatal("hier routing without roots accepted")
	}
	s = base()
	s.Routing = RoutingHier
	s.HierRoots = []string{"a"}
	s.fillDefaults()
	if err := s.Validate(); err == nil {
		t.Fatal("non-router hier root accepted")
	}
	s = base()
	s.HierRoots = []string{"r"}
	s.fillDefaults()
	if err := s.Validate(); err == nil {
		t.Fatal("hier roots on an exact-routing spec accepted")
	}
	// A triangle has a same-level link; Build must reject it for hier.
	s = base()
	s.Links = append(s.Links, LinkSpec{A: "a", B: "b", LinkConfig: link})
	s.Routing = RoutingHier
	s.HierRoots = []string{"r"}
	s.Routers = []string{"r", "a", "b"}
	if _, err := Build(s); err == nil {
		t.Fatal("same-level link accepted by hier routing")
	}
}

// TestParameterisedLookup covers the registry's parameter plumbing: defaults,
// explicit values, unknown names/values, and non-parameterised scenarios.
func TestParameterisedLookup(t *testing.T) {
	spec, err := LookupParams("fattree", map[string]float64{"k": 8, "hosts": 2})
	if err != nil {
		t.Fatal(err)
	}
	hosts := 0
	nodes := make(map[string]bool)
	for _, ls := range spec.Links {
		nodes[ls.A] = true
		nodes[ls.B] = true
	}
	routers := make(map[string]bool)
	for _, r := range spec.Routers {
		routers[r] = true
	}
	for n := range nodes {
		if !routers[n] {
			hosts++
		}
	}
	if want := 8 * 4 * 2; hosts != want { // k pods × k/2 edges × 2 hosts
		t.Fatalf("k=8 hosts=2 fat-tree has %d hosts, want %d", hosts, want)
	}
	if _, err := LookupParams("fattree", map[string]float64{"k": 3}); err == nil {
		t.Fatal("odd k accepted")
	}
	if _, err := LookupParams("fattree", map[string]float64{"k": 4.5}); err == nil {
		t.Fatal("fractional k accepted")
	}
	if _, err := LookupParams("fattree", map[string]float64{"pods": 4}); err == nil {
		t.Fatal("unknown parameter accepted")
	}
	if _, err := LookupParams("dumbbell", map[string]float64{"k": 4}); err == nil {
		t.Fatal("parameters on a non-parameterised scenario accepted")
	}
	if _, err := LookupParams("dumbbell", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("isp"); err != nil {
		t.Fatal(err)
	}
}
