package sweep

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/dynamics"
	"repro/internal/netsim"
	"repro/internal/probe"
	"repro/internal/scenario"
)

// --- expansion -------------------------------------------------------------

// TestCampaignExpansionGolden pins the cross-product order and the seed
// derivation: points enumerate row-major with the first axis slowest, string
// axes do not perturb the derived seeds (variant pairing), and the stride
// constants are part of the campaign format.
func TestCampaignExpansionGolden(t *testing.T) {
	base := scenario.PointToPoint(scenario.PointToPointParams{
		Workloads: []scenario.Workload{{Kind: scenario.KindBulk, From: "sender", To: "receiver", Bytes: 1000}},
	})
	camp := Campaign{
		Name: "golden",
		Base: &base,
		Axes: []Axis{
			{Param: "workload[0].cc", Strings: []string{"cm", "native"}},
			{Param: "link[0].loss", Values: []float64{0, 0.01, 0.02}},
		},
		Replicates: 2,
		Seed:       100,
	}
	points, err := camp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d, want 6", len(points))
	}
	type coord struct {
		cc   string
		loss float64
	}
	wantCoords := []coord{
		{"cm", 0}, {"cm", 0.01}, {"cm", 0.02},
		{"native", 0}, {"native", 0.01}, {"native", 0.02},
	}
	// The loss axis is the only numeric one, so point seeds depend on the
	// loss index alone: the cm and native variants at one loss share seeds.
	wantSeeds := [][]int64{
		{100, 100 + 7919}, {100 + 1_000_003, 100 + 1_000_003 + 7919}, {100 + 2_000_006, 100 + 2_000_006 + 7919},
		{100, 100 + 7919}, {100 + 1_000_003, 100 + 1_000_003 + 7919}, {100 + 2_000_006, 100 + 2_000_006 + 7919},
	}
	for i, pt := range points {
		if pt.Index != i {
			t.Fatalf("point %d has index %d", i, pt.Index)
		}
		got := coord{pt.Values[0].Str, pt.Values[1].Num}
		if got != wantCoords[i] {
			t.Fatalf("point %d coord = %+v, want %+v", i, got, wantCoords[i])
		}
		if len(pt.Seeds) != 2 || pt.Seeds[0] != wantSeeds[i][0] || pt.Seeds[1] != wantSeeds[i][1] {
			t.Fatalf("point %d seeds = %v, want %v", i, pt.Seeds, wantSeeds[i])
		}
		for r, spec := range pt.Specs {
			if spec.Seed != pt.Seeds[r] {
				t.Fatalf("point %d replicate %d spec seed %d != %d", i, r, spec.Seed, pt.Seeds[r])
			}
			if spec.Workloads[0].CC != got.cc || spec.Links[0].LossRate != got.loss {
				t.Fatalf("point %d spec not patched: %+v", i, spec.Workloads[0])
			}
		}
	}
	// Patching must never leak into the shared base or across specs.
	if base.Workloads[0].CC != "" || base.Links[0].LossRate != 0 {
		t.Fatalf("base spec mutated: %+v", base.Workloads[0])
	}
}

// TestSeedAxisOverridesDerivation: an explicit "seed" axis becomes the seed
// itself; only the replicate stride is added.
func TestSeedAxisOverridesDerivation(t *testing.T) {
	base := scenario.PointToPoint(scenario.PointToPointParams{})
	camp := Campaign{
		Base:       &base,
		Axes:       []Axis{{Param: "seed", Values: []float64{41, 97}}},
		Replicates: 2,
	}
	points, err := camp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{41, 41 + 7919}, {97, 97 + 7919}}
	for i, pt := range points {
		if pt.Seeds[0] != want[i][0] || pt.Seeds[1] != want[i][1] {
			t.Fatalf("point %d seeds = %v, want %v", i, pt.Seeds, want[i])
		}
	}
}

func TestAxisScales(t *testing.T) {
	lin, err := Axis{Param: "link[0].loss", Min: 0, Max: 0.04, Steps: 5}.expand()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{0, 0.01, 0.02, 0.03, 0.04} {
		if diff := lin[i].Num - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("linear[%d] = %v, want %v", i, lin[i].Num, want)
		}
	}
	log, err := Axis{Param: "link[0].bandwidth", Scale: ScaleLog, Min: 1e6, Max: 1e8, Steps: 3}.expand()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1e6, 1e7, 1e8} {
		if ratio := log[i].Num / want; ratio < 0.999999 || ratio > 1.000001 {
			t.Fatalf("log[%d] = %v, want %v", i, log[i].Num, want)
		}
	}
	if _, err := (Axis{Param: "x", Scale: ScaleLog, Min: 0, Max: 1, Steps: 3}).expand(); err == nil {
		t.Fatal("log scale with min 0 must fail")
	}
	if _, err := (Axis{Param: "x"}).expand(); err == nil {
		t.Fatal("axis without values must fail")
	}
	if _, err := (Axis{Param: "x", Strings: []string{"a"}, Values: []float64{1}}).expand(); err == nil {
		t.Fatal("mixed strings+values must fail")
	}
}

// --- patching --------------------------------------------------------------

func TestApplyParams(t *testing.T) {
	spec := scenario.PointToPoint(scenario.PointToPointParams{
		Workloads: []scenario.Workload{{Kind: scenario.KindBulk, From: "sender", To: "receiver"}},
	})
	num := func(v float64) Value { return Value{Num: v} }
	str := func(s string) Value { return Value{Str: s, IsString: true} }
	cases := []struct {
		param string
		v     Value
		check func() bool
	}{
		{"seed", num(7), func() bool { return spec.Seed == 7 }},
		{"shards", num(4), func() bool { return spec.Shards == 4 }},
		{"duration", num(2.5), func() bool { return spec.Duration == 2500*time.Millisecond }},
		{"link[0].loss", num(0.03), func() bool { return spec.Links[0].LossRate == 0.03 }},
		{"link[0].bandwidth", num(5e6), func() bool { return spec.Links[0].Bandwidth == 5*netsim.Mbps }},
		{"link[0].delay", num(0.02), func() bool { return spec.Links[0].Delay == 20*time.Millisecond }},
		{"link[0].queue", num(64), func() bool { return spec.Links[0].QueuePackets == 64 }},
		{"link[0].seed", num(9), func() bool { return spec.Links[0].Seed == 9 }},
		{"link[0].ge.p_good_bad", num(0.1), func() bool { return spec.Links[0].Gilbert.PGoodBad == 0.1 }},
		{"link[0].ge.p_bad_good", num(0.2), func() bool { return spec.Links[0].Gilbert.PBadGood == 0.2 }},
		{"link[0].ge.loss_bad", num(0.9), func() bool { return spec.Links[0].Gilbert.LossBad == 0.9 }},
		{"link[0].ge.tick", num(0.05), func() bool { return spec.Links[0].Gilbert.Tick == 50*time.Millisecond }},
		{"workload[0].flows", num(8), func() bool { return spec.Workloads[0].Flows == 8 }},
		{"workload[0].bytes", num(4096), func() bool { return spec.Workloads[0].Bytes == 4096 }},
		{"workload[0].rate", num(12.5), func() bool { return spec.Workloads[0].Rate == 12.5 }},
		{"workload[0].start", num(1.5), func() bool { return spec.Workloads[0].Start == 1500*time.Millisecond }},
		{"workload[0].recv_window", num(65536), func() bool { return spec.Workloads[0].RecvWindow == 65536 }},
		{"workload[0].cc", str("cm"), func() bool { return spec.Workloads[0].CC == "cm" }},
		{"workload[0].kind", str("webmix"), func() bool { return spec.Workloads[0].Kind == "webmix" }},
	}
	for _, c := range cases {
		c.v.Param = c.param
		if err := Apply(&spec, c.param, c.v); err != nil {
			t.Fatalf("Apply(%q): %v", c.param, err)
		}
		if !c.check() {
			t.Fatalf("Apply(%q) did not take", c.param)
		}
	}
	// A patched spec must still validate.
	spec.Workloads[0].Kind = scenario.KindBulk
	if err := spec.Validate(); err != nil {
		t.Fatalf("patched spec invalid: %v", err)
	}
}

func TestApplyErrors(t *testing.T) {
	spec := scenario.PointToPoint(scenario.PointToPointParams{
		Workloads: []scenario.Workload{{Kind: scenario.KindBulk, From: "sender", To: "receiver"}},
	})
	for _, c := range []struct {
		param string
		v     Value
	}{
		{"nonsense", Value{Num: 1}},
		{"link[5].loss", Value{Num: 1}},
		{"link.loss", Value{Num: 1}},
		{"link[x].loss", Value{Num: 1}},
		{"link[0].frobnicate", Value{Num: 1}},
		{"workload[0].cc", Value{Num: 1}},                 // string param, numeric value
		{"link[0].loss", Value{Str: "a", IsString: true}}, // numeric param, string value
		{"seed[0]", Value{Num: 1}},
	} {
		if err := Apply(&spec, c.param, c.v); err == nil {
			t.Fatalf("Apply(%q) should fail", c.param)
		}
	}
}

func TestApplyAllLinks(t *testing.T) {
	spec := scenario.Dumbbell(scenario.DumbbellParams{Senders: 2, Receivers: 2})
	if err := Apply(&spec, "link[*].loss", Value{Num: 0.02}); err != nil {
		t.Fatal(err)
	}
	for i := range spec.Links {
		if spec.Links[i].LossRate != 0.02 {
			t.Fatalf("link %d not patched", i)
		}
	}
}

// --- flattening ------------------------------------------------------------

func TestFlattenResult(t *testing.T) {
	spec := scenario.PointToPoint(scenario.PointToPointParams{
		Workloads: []scenario.Workload{{Kind: scenario.KindBulk, From: "sender", To: "receiver", Bytes: 100_000}},
		Duration:  10 * time.Second,
	})
	res, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	flat := Flatten(res)
	for _, key := range []string{
		"end_time",
		"flows[0].delivered",
		"flows[0].completed",
		"flows[0].throughput_kbps",
		"links[0].SentPackets",
		"links[1].SentPackets",
		"hosts[0].ReceivedBytes",
		"total.delivered_bytes",
		"total.goodput_kbps",
		"total.completed",
	} {
		if _, ok := flat[key]; !ok {
			t.Fatalf("flattened result missing %q", key)
		}
	}
	if flat["flows[0].delivered"] != 100_000 {
		t.Fatalf("delivered = %v", flat["flows[0].delivered"])
	}
	if flat["flows[0].completed"] != 1 {
		t.Fatalf("completed = %v", flat["flows[0].completed"])
	}
	if flat["total.delivered_bytes"] != 100_000 {
		t.Fatalf("total delivered = %v", flat["total.delivered_bytes"])
	}
	// end_time flattens as seconds.
	if flat["end_time"] != 10 {
		t.Fatalf("end_time = %v, want 10", flat["end_time"])
	}
}

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"total.*", "total.completed", true},
		{"total.*", "flows[0].delivered", false},
		{"flows[*].delivered", "flows[12].delivered", true},
		{"flows[*].delivered", "flows[0].throughput_kbps", false},
		{"exact", "exact", true},
		{"exact", "exact2", false},
		{"*", "anything", true},
	}
	for _, c := range cases {
		if got := globMatch(c.pat, c.s); got != c.want {
			t.Fatalf("globMatch(%q, %q) = %v", c.pat, c.s, got)
		}
	}
}

// --- execution -------------------------------------------------------------

// TestCampaignSerialParallelByteIdentical is the sweep-level determinism
// gate: a campaign over a spec with active dynamics — a declared
// Gilbert-Elliott fade plus stochastic generators (Poisson flaps and a
// bandwidth walk) — emits byte-identical CSV and JSON whether the runner
// uses one worker or eight.
func TestCampaignSerialParallelByteIdentical(t *testing.T) {
	base := scenario.PointToPoint(scenario.PointToPointParams{
		Link: netsim.LinkConfig{
			Bandwidth:    4 * netsim.Mbps,
			Delay:        10 * time.Millisecond,
			QueuePackets: 60,
			Gilbert:      &netsim.GilbertElliott{PGoodBad: 0.01, PBadGood: 0.2, LossBad: 0.5},
		},
		Workloads: []scenario.Workload{
			{Kind: scenario.KindStream, From: "sender", To: "receiver", CC: scenario.CCCM},
			{Kind: scenario.KindWebMix, From: "sender", To: "receiver", Flows: 10, Rate: 4, Bytes: 8 << 10},
		},
		Duration: 5 * time.Second,
	})
	base.Name = "sweep-dynamics"
	base.Generators = []dynamics.Generator{
		{Kind: dynamics.GenPoissonFlaps, Link: 0, MeanUp: 1500 * time.Millisecond, MeanDown: 200 * time.Millisecond},
		{Kind: dynamics.GenBandwidthWalk, Link: 0, Step: 500 * time.Millisecond},
	}
	camp := Campaign{
		Name: "dynamics-sweep",
		Base: &base,
		Axes: []Axis{
			{Param: "workload[0].cc", Strings: []string{scenario.CCCM, scenario.CCNative}},
			{Param: "link[0].ge.p_good_bad", Values: []float64{0.005, 0.02}},
		},
		Replicates: 2,
		Metrics:    []string{"total.*", "flows[*].delivered", "links[0].BurstDrops", "links[0].DownDrops"},
	}
	serial, err := camp.Run(scenario.Runner{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := camp.Run(scenario.Runner{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.CSV() != parallel.CSV() {
		t.Fatal("CSV differs between serial and parallel execution")
	}
	sj, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	pj, err := parallel.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Fatal("JSON differs between serial and parallel execution")
	}
	// The dynamics must actually have been active: generated link flaps
	// produce down drops or at least fired events in some run.
	fired := false
	for _, pt := range serial.Points {
		for _, r := range pt.Results {
			if len(r.Events) > 0 {
				for _, ev := range r.Events {
					if ev.Fired {
						fired = true
					}
				}
			}
		}
	}
	if !fired {
		t.Fatal("no generated dynamics events fired — the sweep did not exercise dynamics")
	}
}

// TestCampaignAggregatesAcrossReplicates checks the summaries really span
// the replicate axis: with per-replicate seeds and a lossy link, replicate
// throughputs differ, so stddev must be positive and min < max.
func TestCampaignAggregatesAcrossReplicates(t *testing.T) {
	base := scenario.PointToPoint(scenario.PointToPointParams{
		Link: netsim.LinkConfig{
			Bandwidth:    8 * netsim.Mbps,
			Delay:        15 * time.Millisecond,
			QueuePackets: 60,
		},
		Workloads: []scenario.Workload{{
			Kind: scenario.KindBulk, From: "sender", To: "receiver", Bytes: 200_000,
		}},
		Duration: 30 * time.Second,
	})
	base.Name = "replicates"
	camp := Campaign{
		Base:       &base,
		Axes:       []Axis{{Param: "link[0].loss", Values: []float64{0.02}}},
		Replicates: 4,
		Metrics:    []string{"flows[0].throughput_kbps"},
	}
	res, err := camp.Run(scenario.Runner{})
	if err != nil {
		t.Fatal(err)
	}
	s, ok := res.Points[0].Metrics["flows[0].throughput_kbps"]
	if !ok {
		t.Fatalf("metric missing: %v", res.Points[0].Metrics)
	}
	if s.N != 4 {
		t.Fatalf("n = %d, want 4", s.N)
	}
	if !(s.Min < s.Max) || s.Stddev <= 0 {
		t.Fatalf("replicates did not vary: %+v", s)
	}
	if s.Mean < s.Min || s.Mean > s.Max || s.P50 < s.Min || s.P99 > s.Max {
		t.Fatalf("summary inconsistent: %+v", s)
	}
}

// TestShardsAxisOverridesCampaignShards: a swept "shards" axis wins over the
// campaign-level default, so the emitted shards column always reports what
// ran.
func TestShardsAxisOverridesCampaignShards(t *testing.T) {
	base := scenario.PointToPoint(scenario.PointToPointParams{})
	camp := Campaign{
		Base:   &base,
		Shards: 2,
		Axes:   []Axis{{Param: "shards", Values: []float64{1, 4}}},
	}
	points, err := camp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Specs[0].Shards != 1 || points[1].Specs[0].Shards != 4 {
		t.Fatalf("shards axis clobbered by campaign default: %d / %d",
			points[0].Specs[0].Shards, points[1].Specs[0].Shards)
	}
	// Without the axis, the campaign-level default applies.
	camp.Axes = []Axis{{Param: "link[0].loss", Values: []float64{0}}}
	points, err = camp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Specs[0].Shards != 2 {
		t.Fatalf("campaign shards not applied: %d", points[0].Specs[0].Shards)
	}
}

// TestCampaignScenarioByName runs a registry-backed campaign, the cmsim
// -sweep path.
func TestCampaignScenarioByName(t *testing.T) {
	camp := Campaign{
		Scenario: "p2p",
		Axes:     []Axis{{Param: "workload[0].flows", Values: []float64{1, 2}}},
	}
	res, err := camp.Run(scenario.Runner{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[0].Metrics["total.flows"].Mean != 1 || res.Points[1].Metrics["total.flows"].Mean != 2 {
		t.Fatalf("flows axis did not take: %+v / %+v",
			res.Points[0].Metrics["total.flows"], res.Points[1].Metrics["total.flows"])
	}
}

// TestCampaignRecordsErrors: a point whose spec fails validation reports the
// failure instead of aborting the whole campaign.
func TestCampaignRecordsErrors(t *testing.T) {
	base := scenario.PointToPoint(scenario.PointToPointParams{
		Workloads: []scenario.Workload{{Kind: scenario.KindBulk, From: "sender", To: "receiver", Bytes: 1000}},
	})
	camp := Campaign{
		Base: &base,
		// "bogus" is not a workload kind: that point must fail, the other run.
		Axes: []Axis{{Param: "workload[0].kind", Strings: []string{scenario.KindBulk, "bogus"}}},
	}
	res, err := camp.Run(scenario.Runner{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[0].Failed != 0 || len(res.Points[0].Metrics) == 0 {
		t.Fatalf("valid point failed: %+v", res.Points[0])
	}
	if res.Points[1].Failed != 1 || len(res.Points[1].Errors) != 1 {
		t.Fatalf("invalid point not recorded: %+v", res.Points[1])
	}
}

// TestCampaignProbeMetrics: campaign-level probes land on every expanded
// spec, their series summarise into probe.* metrics under the default metric
// selection, and the columns appear in the CSV.
func TestCampaignProbeMetrics(t *testing.T) {
	base := scenario.PointToPoint(scenario.PointToPointParams{
		Link: netsim.LinkConfig{Bandwidth: 4 * netsim.Mbps, Delay: 10 * time.Millisecond, QueuePackets: 60},
		Workloads: []scenario.Workload{
			{Kind: scenario.KindBulk, From: "sender", To: "receiver", Bytes: 1 << 20, CC: scenario.CCCM},
		},
		Duration: 4 * time.Second,
	})
	base.Name = "probe-sweep"
	camp := Campaign{
		Name: "probe-sweep",
		Base: &base,
		Axes: []Axis{{Param: "link[0].loss", Values: []float64{0, 0.01}}},
		Probes: []probe.Spec{
			{Target: "link[0].queue_depth"},
			{Target: "link[0].utilization"},
			{Target: "cm[sender].cwnd", Name: "cwnd"},
		},
		Replicates: 2,
	}
	res, err := camp.Run(scenario.Runner{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range res.Points {
		for _, key := range []string{
			"probe.link[0].queue_depth.mean", "probe.link[0].utilization.max",
			"probe.cwnd.last", "probe.cwnd.samples", "total.delivered_bytes",
		} {
			if _, ok := pt.Metrics[key]; !ok {
				t.Fatalf("point %d is missing metric %q", pt.Index, key)
			}
		}
		if got := pt.Metrics["probe.cwnd.samples"].Mean; got != 16 {
			t.Fatalf("point %d: cwnd samples = %v, want 16 (4s at 250ms)", pt.Index, got)
		}
	}
	csv := res.CSV()
	for _, col := range []string{"probe.cwnd.mean", "probe.link[0].queue_depth.max"} {
		if !strings.Contains(csv, col) {
			t.Fatalf("CSV is missing %q", col)
		}
	}
	// The raw per-point series must never leak into the flattened key space.
	for key := range res.Points[0].Metrics {
		if strings.Contains(key, "series[") || strings.Contains(key, ".points[") {
			t.Fatalf("raw series key %q leaked into metrics", key)
		}
	}
}
