package scenario

import (
	"fmt"
	"sort"
)

// registry maps scenario names to spec factories. Factories (not specs) are
// registered so each lookup returns a fresh, unshared Spec.
var registry = map[string]func() Spec{}

// Register adds a named scenario factory. It panics on duplicate names so
// registration mistakes surface at init time.
func Register(name string, factory func() Spec) {
	if name == "" || factory == nil {
		panic("scenario: Register requires a name and a factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("scenario: %q registered twice", name))
	}
	registry[name] = factory
}

// Lookup returns a fresh spec for the named scenario.
func Lookup(name string) (Spec, error) {
	f, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("scenario: unknown scenario %q (use List for the catalogue)", name)
	}
	spec := f()
	spec.Name = name
	return spec, nil
}

// List returns the registered scenario names in sorted order.
func List() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Describe returns the one-line description of a registered scenario.
func Describe(name string) string {
	f, ok := registry[name]
	if !ok {
		return ""
	}
	return f().Description
}

func init() {
	Register("dumbbell", func() Spec {
		return Dumbbell(DumbbellParams{Senders: 2, Receivers: 2, FlowsPerPair: 2, CrossProduct: true, Bytes: 2 << 20})
	})
	Register("dumbbell-native", func() Spec {
		return Dumbbell(DumbbellParams{Senders: 2, Receivers: 2, FlowsPerPair: 2, CrossProduct: true, Bytes: 2 << 20, CC: CCNative})
	})
	Register("parkinglot", func() Spec {
		return ParkingLot(ParkingLotParams{Hops: 3})
	})
	Register("star", func() Spec {
		return Star(StarParams{Leaves: 4})
	})
	Register("p2p", func() Spec {
		return PointToPoint(PointToPointParams{
			Workloads: []Workload{{Kind: KindBulk, From: "sender", To: "receiver", Bytes: 2 << 20, CC: CCCM}},
		})
	})
	Register("wireless", func() Spec {
		return Wireless(WirelessParams{})
	})
	Register("asymmetric", func() Spec {
		return Asymmetric(AsymmetricParams{})
	})
	Register("flaky-dumbbell", func() Spec {
		return FlakyDumbbell(FlakyDumbbellParams{})
	})
	Register("grid", func() Spec {
		return DumbbellGrid(GridParams{})
	})
	Register("webmix", func() Spec {
		return WebMix(WebMixParams{})
	})
	Register("churn", func() Spec {
		return Churn(ChurnParams{})
	})
}
