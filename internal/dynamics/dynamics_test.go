package dynamics

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/simtime"
)

func testLinks(sched *simtime.Scheduler) (*netsim.Duplex, Resolver) {
	d := netsim.NewDuplex(sched, netsim.LinkConfig{Bandwidth: 10 * netsim.Mbps, QueuePackets: 10})
	sink := netsim.ReceiverFunc(func(p *netsim.Packet) { p.Release() })
	d.Connect(sink, sink)
	resolve := func(link int, dir string) []*netsim.Link {
		switch dir {
		case DirForward:
			return []*netsim.Link{d.Forward}
		case DirReverse:
			return []*netsim.Link{d.Reverse}
		default:
			return []*netsim.Link{d.Forward, d.Reverse}
		}
	}
	return d, resolve
}

func TestEventValidate(t *testing.T) {
	good := []Event{
		{At: time.Second, Kind: LinkDown, Link: 0},
		{Kind: LinkUp, Link: 1, Direction: DirReverse},
		{Kind: SetBandwidth, Link: 0, Bandwidth: netsim.Mbps},
		{Kind: SetDelay, Link: 0, Delay: 0},
		{Kind: SetLoss, Link: 0, LossRate: 0.5},
		{Kind: SetGilbert, Link: 0, Gilbert: &netsim.GilbertElliott{PGoodBad: 0.1, PBadGood: 0.5}},
		{Kind: SetGilbert, Link: 0}, // nil Gilbert disables the model
	}
	for i, ev := range good {
		if err := ev.Validate(2); err != nil {
			t.Errorf("good event %d rejected: %v", i, err)
		}
	}
	bad := []Event{
		{At: -time.Second, Kind: LinkDown, Link: 0},
		{Kind: "teleport", Link: 0},
		{Kind: LinkDown, Link: 2},
		{Kind: LinkDown, Link: -1},
		{Kind: LinkDown, Link: 0, Direction: "sideways"},
		{Kind: SetBandwidth, Link: 0},
		{Kind: SetDelay, Link: 0, Delay: -time.Second},
		{Kind: SetLoss, Link: 0, LossRate: 1.5},
		{Kind: SetGilbert, Link: 0, Gilbert: &netsim.GilbertElliott{PGoodBad: 2}},
	}
	for i, ev := range bad {
		if err := ev.Validate(2); err == nil {
			t.Errorf("bad event %d accepted: %+v", i, ev)
		}
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	in := []Event{
		{At: 5 * time.Second, Kind: LinkDown, Link: 0},
		{At: 8 * time.Second, Kind: SetGilbert, Link: 1, Direction: DirForward,
			Gilbert: &netsim.GilbertElliott{PGoodBad: 0.01, PBadGood: 0.25, LossBad: 0.6}},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out []Event
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || *out[1].Gilbert != *in[1].Gilbert {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

// TestTimelineFiresInOrder checks that events apply at their declared virtual
// times, to the declared direction, and that records report execution.
func TestTimelineFiresInOrder(t *testing.T) {
	sched := simtime.NewScheduler()
	d, resolve := testLinks(sched)
	tl := NewTimeline(sched, []Event{
		{At: 0, Kind: SetBandwidth, Link: 0, Direction: DirReverse, Bandwidth: 64 * netsim.Kbps},
		{At: time.Second, Kind: LinkDown, Link: 0},
		{At: 2 * time.Second, Kind: LinkUp, Link: 0},
		{At: time.Hour, Kind: SetLoss, Link: 0, LossRate: 0.1}, // beyond the run
	}, resolve, nil)
	tl.Install()

	// The time-zero event applied during Install, before the scheduler ran.
	if got := d.Reverse.Config().Bandwidth; got != 64*netsim.Kbps {
		t.Fatalf("reverse bandwidth %v before run, want 64Kbps", got)
	}
	if got := d.Forward.Config().Bandwidth; got != 10*netsim.Mbps {
		t.Fatalf("forward bandwidth %v changed by a reverse-only event", got)
	}

	sched.RunUntil(1500 * time.Millisecond)
	if !d.Forward.IsDown() || !d.Reverse.IsDown() {
		t.Fatal("both directions should be down at t=1.5s")
	}
	sched.RunUntil(3 * time.Second)
	if d.Forward.IsDown() || d.Reverse.IsDown() {
		t.Fatal("both directions should be up at t=3s")
	}

	recs := tl.Records()
	for i, want := range []bool{true, true, true, false} {
		if recs[i].Fired != want {
			t.Errorf("record %d fired = %v, want %v", i, recs[i].Fired, want)
		}
	}
}

// TestTimelineTopologyHook checks that only link up/down events invoke the
// route-recomputation hook and that its count lands in the record.
func TestTimelineTopologyHook(t *testing.T) {
	sched := simtime.NewScheduler()
	_, resolve := testLinks(sched)
	var hookCalls int
	tl := NewTimeline(sched, []Event{
		{At: time.Second, Kind: SetLoss, Link: 0, LossRate: 0.2},
		{At: 2 * time.Second, Kind: LinkDown, Link: 0},
		{At: 3 * time.Second, Kind: LinkUp, Link: 0},
	}, resolve, func(ev Event) int {
		hookCalls++
		return 7
	})
	tl.Install()
	sched.RunUntil(5 * time.Second)

	if hookCalls != 2 {
		t.Fatalf("topology hook called %d times, want 2 (down+up only)", hookCalls)
	}
	recs := tl.Records()
	if recs[0].RoutesChanged != 0 || recs[1].RoutesChanged != 7 || recs[2].RoutesChanged != 7 {
		t.Fatalf("routes-changed records wrong: %+v", recs)
	}
}
