package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/apicost"
	"repro/internal/app"
)

// The experiment tests verify the *shape* requirements listed in DESIGN.md:
// who wins, by roughly what factor, and where the qualitative behaviour
// (decay, convergence, improvement) appears. Absolute numbers are not
// compared against the paper's testbed.

func TestFig3ShapeThroughputDecaysWithLossAndCMTracksLinux(t *testing.T) {
	cfg := Fig3Config{
		LossPercents:  []float64{0, 1, 3, 5},
		TransferBytes: 400_000,
		Trials:        1,
	}
	res := RunFig3(cfg)
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.CMFailed > 0 || p.LinuxFail > 0 {
			t.Fatalf("runs failed at loss %.1f%%: %+v", p.LossPct, p)
		}
		if p.CMKBps <= 0 || p.LinuxKBps <= 0 {
			t.Fatalf("zero throughput at loss %.1f%%", p.LossPct)
		}
		// TCP/CM should track TCP/Linux within a factor of two in both
		// directions (the paper shows them close together).
		ratio := p.CMKBps / p.LinuxKBps
		if ratio < 0.5 || ratio > 2.0 {
			t.Fatalf("CM/Linux ratio %.2f at loss %.1f%% outside [0.5, 2.0]", ratio, p.LossPct)
		}
	}
	// Throughput decays substantially as loss grows, for both stacks.
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.CMKBps >= 0.8*first.CMKBps {
		t.Fatalf("CM throughput should decay with loss: %.0f -> %.0f", first.CMKBps, last.CMKBps)
	}
	if last.LinuxKBps >= 0.8*first.LinuxKBps {
		t.Fatalf("Linux throughput should decay with loss: %.0f -> %.0f", first.LinuxKBps, last.LinuxKBps)
	}
	if !strings.Contains(res.Table(), "Figure 3") {
		t.Fatal("table rendering broken")
	}
}

func TestFig4ShapeCMWithinAFractionOfAPercent(t *testing.T) {
	cfg := Fig4Config{BufferCounts: []int{200, 2000}, BufferSize: 8192}
	res := RunFig4(cfg)
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.CMKBps <= 0 || p.LinuxKBps <= 0 {
			t.Fatalf("zero throughput at %d buffers", p.Buffers)
		}
		// Figure 4: the worst-case difference is ~0.5 %; allow 2 %.
		if p.DiffPercent > 2.0 || p.DiffPercent < -2.0 {
			t.Fatalf("CM vs Linux difference %.2f%% at %d buffers exceeds 2%%", p.DiffPercent, p.Buffers)
		}
	}
	// The difference shrinks (or at least does not grow) with transfer length.
	if res.Points[1].DiffPercent > res.Points[0].DiffPercent+0.5 {
		t.Fatalf("difference should shrink with longer transfers: %+v", res.Points)
	}
	if !strings.Contains(res.Table(), "Figure 4") {
		t.Fatal("table rendering broken")
	}
}

func TestFig5ShapeCPUOverheadUnderOnePercent(t *testing.T) {
	res := RunFig5(Fig5Config{Fig4: Fig4Config{BufferCounts: []int{200, 2000}, BufferSize: 8192}})
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.CMUtil <= 0 || p.LinuxUtil <= 0 || p.CMUtil > 1 || p.LinuxUtil > 1 {
			t.Fatalf("utilisation out of range: %+v", p)
		}
		if p.DiffPercentU < -0.5 {
			t.Fatalf("CM should not use less CPU than Linux: %+v", p)
		}
	}
	// Figure 5: the difference converges to slightly under 1 percentage point
	// for long transfers.
	last := res.Points[len(res.Points)-1]
	if last.DiffPercentU > 1.0 {
		t.Fatalf("long-run CM CPU overhead %.2f pp exceeds 1 pp", last.DiffPercentU)
	}
	if !strings.Contains(res.Table(), "Figure 5") {
		t.Fatal("table rendering broken")
	}
}

func TestTable1Reproduction(t *testing.T) {
	res := RunTable1(apicost.CostModel{})
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	out := res.Table()
	for _, want := range []string{"cm_notify", "cm_request", "recv", "gettimeofday", "-baseline-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig6ShapeOrderingAndWorstCase(t *testing.T) {
	res := RunFig6(Fig6Config{})
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	if res.WorstCaseReduction < 0.15 || res.WorstCaseReduction > 0.35 {
		t.Fatalf("worst-case throughput reduction %.2f outside ~25%% band", res.WorstCaseReduction)
	}
	// For every size the ordering must match Figure 6.
	bySize := map[int]map[apicost.Variant]time.Duration{}
	for _, p := range res.Points {
		if bySize[p.Size] == nil {
			bySize[p.Size] = map[apicost.Variant]time.Duration{}
		}
		bySize[p.Size][p.Variant] = p.PerPkt
	}
	for size, m := range bySize {
		if !(m[apicost.ALFNoConnect] > m[apicost.ALF] &&
			m[apicost.ALF] > m[apicost.Buffered] &&
			m[apicost.Buffered] > m[apicost.TCPCMNoDelay] &&
			m[apicost.TCPCMNoDelay] >= m[apicost.TCPCM] &&
			m[apicost.TCPCM] >= m[apicost.TCPLinux]) {
			t.Fatalf("ordering violated at %dB: %v", size, m)
		}
	}
	if !strings.Contains(res.Table(), "Figure 6") {
		t.Fatal("table rendering broken")
	}
}

func TestFig7ShapeSharedStateSpeedsUpLaterRequests(t *testing.T) {
	cfg := Fig7Config{FileSize: 96 * 1024, Requests: 5, Spacing: 300 * time.Millisecond}
	res := RunFig7(cfg)
	if len(res.CMms) != 5 || len(res.Linuxms) != 5 {
		t.Fatalf("incomplete results: cm=%d linux=%d", len(res.CMms), len(res.Linuxms))
	}
	// The CM's later requests must be substantially faster than its first
	// (the paper reports ~40 %).
	if res.ImprovementPct < 15 {
		t.Fatalf("CM improvement first->last = %.0f%%, want >= 15%%", res.ImprovementPct)
	}
	// The unmodified server gains nothing across requests: its times stay
	// roughly flat.
	minL, maxL := res.Linuxms[0], res.Linuxms[0]
	for _, v := range res.Linuxms {
		if v < minL {
			minL = v
		}
		if v > maxL {
			maxL = v
		}
	}
	if maxL > 1.35*minL {
		t.Fatalf("Linux completion times should be flat, got min=%.0f max=%.0f", minL, maxL)
	}
	// The CM's first transfer pays a small penalty (initial window 1 vs 2).
	if res.FirstRequestPenaltyMs < 0 {
		t.Fatalf("CM first request should not be faster than Linux first request (penalty %.0f ms)", res.FirstRequestPenaltyMs)
	}
	// Later CM requests beat the Linux baseline.
	if res.CMms[len(res.CMms)-1] >= res.Linuxms[len(res.Linuxms)-1] {
		t.Fatalf("later CM requests should beat Linux: cm=%.0f linux=%.0f",
			res.CMms[len(res.CMms)-1], res.Linuxms[len(res.Linuxms)-1])
	}
	if !strings.Contains(res.Table(), "Figure 7") {
		t.Fatal("table rendering broken")
	}
}

func adaptationTestConfig(mode app.LayeredMode, policy app.FeedbackPolicy) AdaptationConfig {
	return AdaptationConfig{
		Mode:     mode,
		Duration: 12 * time.Second,
		Feedback: policy,
		CrossOn:  3 * time.Second,
		CrossOff: 3 * time.Second,
	}
}

func TestFig8ALFAdaptationTrace(t *testing.T) {
	res := RunAdaptation(adaptationTestConfig(app.ModeALF, app.FeedbackPolicy{EveryPackets: 1}))
	if res.TransmissionRate.Len() == 0 || res.ReportedRate.Len() == 0 {
		t.Fatal("traces missing")
	}
	if res.Stats.PacketsSent == 0 || res.Stats.GrantsReceived == 0 {
		t.Fatalf("ALF server did not stream: %+v", res.Stats)
	}
	// The transmission rate must track the CM-reported rate: averaged over
	// the trace they agree within a factor of two.
	tx, rep := res.TransmissionRate.Mean(), res.ReportedRate.Mean()
	if tx <= 0 || rep <= 0 {
		t.Fatalf("zero rates: tx=%.0f reported=%.0f", tx, rep)
	}
	if tx > 2*rep || rep > 3*tx {
		t.Fatalf("transmission rate %.0f does not track reported rate %.0f", tx, rep)
	}
	if !strings.Contains(res.Table(), "alf") || !strings.Contains(res.CSV(), "transmission-rate") {
		t.Fatal("rendering broken")
	}
}

func TestFig9RateCallbackAdaptationTrace(t *testing.T) {
	res := RunAdaptation(adaptationTestConfig(app.ModeRateCallback, app.FeedbackPolicy{EveryPackets: 1}))
	if res.Stats.PacketsSent == 0 {
		t.Fatal("rate-callback server did not stream")
	}
	if res.Stats.GrantsReceived != 0 {
		t.Fatal("rate-callback mode must not use the request/callback API")
	}
	if res.Stats.RateCallbacks == 0 {
		t.Fatal("no rate callbacks were delivered")
	}
	// Self-clocked transmission follows the chosen layer: the average
	// transmission rate stays within the configured layer range.
	tx := res.TransmissionRate.Mean()
	cfg := res.Config
	if tx < cfg.Layers[0]*0.5 || tx > cfg.Layers[len(cfg.Layers)-1]*1.2 {
		t.Fatalf("transmission rate %.0f outside the layer range", tx)
	}
}

func TestFig10DelayedFeedbackIsBurstier(t *testing.T) {
	perPacket := RunAdaptation(adaptationTestConfig(app.ModeRateCallback, app.FeedbackPolicy{EveryPackets: 1}))
	delayed := RunAdaptation(adaptationTestConfig(app.ModeRateCallback,
		app.FeedbackPolicy{EveryPackets: 500, MaxDelay: 2 * time.Second}))
	if delayed.Stats.PacketsSent == 0 {
		t.Fatal("delayed-feedback server did not stream")
	}
	// Delaying feedback must drastically reduce the number of reports.
	if delayed.ReportsSent*5 > perPacket.ReportsSent {
		t.Fatalf("delayed feedback should produce far fewer reports: %d vs %d",
			delayed.ReportsSent, perPacket.ReportsSent)
	}
	if delayed.ReportsSent == 0 {
		t.Fatal("some reports must still arrive (min(500 pkts, 2 s) policy)")
	}
}

func TestConnSetupComparable(t *testing.T) {
	res := RunConnSetup()
	if res.CM <= 0 || res.Linux <= 0 {
		t.Fatalf("setup times missing: %+v", res)
	}
	// "No appreciable difference" in the paper; identical in the simulator.
	diff := res.CM - res.Linux
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.2*float64(res.Linux) {
		t.Fatalf("setup times diverge: %+v", res)
	}
	if !strings.Contains(res.Table(), "Connection establishment") {
		t.Fatal("table rendering broken")
	}
}

func TestAblationInitialWindow(t *testing.T) {
	res := RunAblationInitialWindow()
	if res.FirstRequestIW1ms <= 0 || res.FirstRequestIW2ms <= 0 {
		t.Fatalf("missing results: %+v", res)
	}
	// A 2-MTU initial window should not be slower than a 1-MTU one for the
	// first transfer (the paper attributes the CM's extra RTT to this).
	if res.FirstRequestIW2ms > res.FirstRequestIW1ms+1 {
		t.Fatalf("IW=2 (%.0f ms) should not be slower than IW=1 (%.0f ms)",
			res.FirstRequestIW2ms, res.FirstRequestIW1ms)
	}
	if res.Table() == "" {
		t.Fatal("table rendering broken")
	}
}

func TestAblationBulkCalls(t *testing.T) {
	res := RunAblationBulkCalls(16)
	if res.Flows != 16 {
		t.Fatalf("flows = %d", res.Flows)
	}
	if res.BulkIoctls >= res.PerFlowIoctls {
		t.Fatalf("bulk requests should save crossings: bulk=%d perflow=%d", res.BulkIoctls, res.PerFlowIoctls)
	}
	if res.CrossingsSaved < 10 {
		t.Fatalf("expected to save at least 10 crossings for 16 flows, saved %d", res.CrossingsSaved)
	}
	if res.Table() == "" {
		t.Fatal("table rendering broken")
	}
}

func TestAblationScheduler(t *testing.T) {
	res := RunAblationScheduler()
	if res.RoundRobinShare < 0.8 || res.RoundRobinShare > 1.25 {
		t.Fatalf("unweighted round-robin should split grants evenly, ratio %.2f", res.RoundRobinShare)
	}
	if res.WeightedShare < 2.0 || res.WeightedShare > 4.5 {
		t.Fatalf("weighted round-robin should give ~3x to the heavy flow, ratio %.2f", res.WeightedShare)
	}
	if res.Table() == "" {
		t.Fatal("table rendering broken")
	}
}

// TestRunFailureBackoffAndRecovery checks the adaptation-under-failure
// runner's headline numbers: the macroflow window collapses during the
// scheduled outage and re-probes after recovery, and both timeline events
// execute.
func TestRunFailureBackoffAndRecovery(t *testing.T) {
	res, err := RunFailure(FailureConfig{
		DownAt:   4 * time.Second,
		UpAt:     7 * time.Second,
		Duration: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WindowDuring >= res.WindowBefore/2 {
		t.Fatalf("window did not back off during outage: before=%d during=%d",
			res.WindowBefore, res.WindowDuring)
	}
	if res.WindowAfter <= res.WindowDuring {
		t.Fatalf("window did not recover after link-up: during=%d after=%d",
			res.WindowDuring, res.WindowAfter)
	}
	if len(res.Result.Events) != 2 || !res.Result.Events[0].Fired || !res.Result.Events[1].Fired {
		t.Fatalf("event records wrong: %+v", res.Result.Events)
	}
	if res.Window.Len() == 0 || res.Rate.Len() != res.Window.Len() {
		t.Fatalf("trace lengths wrong: window=%d rate=%d", res.Window.Len(), res.Rate.Len())
	}
}
