// Sharded single-simulation execution: one huge scenario is partitioned into
// K shards (planShards), each shard owns a private simtime.Scheduler driving
// its hosts, links and CMs on its own worker goroutine, and the shards
// advance in conservative lookahead windows.
//
// The synchronization protocol is the classic conservative (window/barrier)
// scheme of parallel discrete-event simulation, specialised to this
// simulator's one guarantee: every cross-shard interaction is a packet on a
// link whose propagation delay is at least the lookahead L. All shards
// execute events in [W, W') concurrently, where W' - W <= L; a packet handed
// off during the window was serialised at some t >= W, so it arrives at
// t + delay >= W + L >= W' — never inside the window that produced it. At the
// barrier the coordinator advances every clock to W', drains the handoff
// queues into the destination schedulers (InjectAt, which panics if the
// invariant ever fails), fires any network-dynamics events scheduled exactly
// at W', and opens the next window.
//
// Determinism is the design constraint. Each injected delivery carries the
// sender-side serialisation time as its insertion stamp and its link
// direction's sort key, and the scheduler orders same-timestamp events by
// (stamp, key, seq) — which is exactly the order a single shared scheduler
// produces (it keys its local hand-ups the same way), so a K-shard run
// executes every host's events in the serial order and the Result is
// byte-identical to the serial run (enforced by TestShardedRuns*).
// Handoff queues are single-producer/single-consumer slices: only the source
// shard's worker appends (during a window), only the coordinator drains (at a
// barrier), and the window channels provide the happens-before edges.
package scenario

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/dynamics"
	"repro/internal/netsim"
	"repro/internal/probe"
	"repro/internal/simtime"
)

// shardMsg is one cross-shard packet delivery in flight between a source
// shard's window and the destination shard's next window.
type shardMsg struct {
	link     *netsim.Link
	pkt, dup *netsim.Packet
	arrive   time.Duration // destination-side delivery time
	sent     time.Duration // sender-side serialisation-complete time (stamp)
	key      uint32        // link-direction sort key (Link.SortKey)
	sub      uint32        // link-local delivery sequence (sub-sequence tie-break)
}

// handoff is the SPSC queue for one (source shard, destination shard) pair.
type handoff struct {
	msgs []shardMsg
}

// windowReq asks a shard worker to execute one synchronization window.
type windowReq struct {
	until     time.Duration
	inclusive bool // final window: run events at exactly until as RunUntil does
}

// shardState is one shard: its scheduler, its worker goroutine's channels,
// and the recycled injection arguments for deliveries into this shard.
type shardState struct {
	sched   *simtime.Scheduler
	running atomic.Bool // true while the worker executes a window
	cmd     chan windowReq
	done    chan struct{}
	free    []*shardMsg // recycled InjectAt arguments, owned by this shard
	fire    func(any)   // built once: delivers a *shardMsg on this shard

	// tl, when set by EnableExecutionTimeline, records one wall-clock span
	// per executed window on this shard's lane. Each lane is written only by
	// its own worker, so no synchronization beyond the window channels.
	tl   *probe.Timeline
	lane int
	// prof, when armed (EnableProfiling), is this shard's per-event-kind
	// profiler; lastProf is the snapshot at the previous window boundary, so
	// each window span carries the per-kind cost delta of exactly that
	// window. Written only by this shard's worker during windows.
	prof     *simtime.Profile
	lastProf simtime.ProfileSnapshot
}

func (ss *shardState) loop() {
	for req := range ss.cmd {
		ss.running.Store(true)
		var t0, v0 time.Duration
		if ss.tl != nil {
			t0, v0 = ss.tl.Since(), ss.sched.Now()
		}
		if req.inclusive {
			ss.sched.RunUntil(req.until)
		} else {
			ss.sched.RunUntilBefore(req.until)
		}
		if ss.tl != nil {
			span := probe.Span{
				Name: "window", Start: t0, Dur: ss.tl.Since() - t0,
				VirtStart: v0, VirtEnd: req.until,
			}
			if ss.prof != nil {
				snap := ss.prof.Snapshot()
				span.Kinds = kindCosts(snap.Delta(ss.lastProf))
				ss.lastProf = snap
			}
			ss.tl.Add(ss.lane, span)
		}
		ss.running.Store(false)
		ss.done <- struct{}{}
	}
}

// getMsg pops a recycled injection argument (or allocates one). Called by the
// coordinator at barriers; recycleMsg is called by the shard worker when the
// delivery fires. The two never run concurrently — barriers exclude windows.
func (ss *shardState) getMsg() *shardMsg {
	if n := len(ss.free); n > 0 {
		m := ss.free[n-1]
		ss.free = ss.free[:n-1]
		return m
	}
	return new(shardMsg)
}

// shardRun coordinates the K shard workers of one sharded simulation.
type shardRun struct {
	plan    shardPlan
	states  []*shardState
	queues  [][]*handoff // [source shard][destination shard]
	control atomic.Bool  // single-threaded coordinator phase (build, barriers)

	// snap, when set, captures a mid-run snapshot at every multiple of
	// snapEvery; the coordinator folds those instants into the barrier
	// schedule so every shard is quiescent exactly then (see probes.go).
	snapEvery time.Duration
	snap      func(at time.Duration)
	// obs/obsFire realise the barrier-observation schedule (observers.go):
	// each obs instant becomes a barrier, and obsFire runs after the drain —
	// before same-instant dynamics events and snapshots, matching the serial
	// path's RunUntilBefore placement.
	obs     []time.Duration
	obsFire func(at time.Duration)
	// timeline, when set, gets one "barrier" span on the coordinator lane
	// (index nshards) per synchronization barrier.
	timeline *probe.Timeline
}

func newShardRun(plan shardPlan) *shardRun {
	sr := &shardRun{plan: plan}
	sr.control.Store(true)
	sr.states = make([]*shardState, plan.nshards)
	sr.queues = make([][]*handoff, plan.nshards)
	for i := range sr.states {
		ss := &shardState{
			sched: simtime.NewScheduler(),
			cmd:   make(chan windowReq),
			done:  make(chan struct{}),
		}
		ss.fire = func(x any) {
			m := x.(*shardMsg)
			m.link.DeliverRemote(m.pkt, m.dup, ss.sched.Now())
			*m = shardMsg{}
			ss.free = append(ss.free, m)
		}
		sr.states[i] = ss
		sr.queues[i] = make([]*handoff, plan.nshards)
		for j := range sr.queues[i] {
			sr.queues[i][j] = &handoff{}
		}
	}
	return sr
}

// ownerCheck returns the ownership predicate for components living on shard
// i: code may run during shard i's window or any single-threaded coordinator
// phase (build, workload start, barriers, collection). The check is phase-
// based, not caller-identity-based (Go deliberately hides goroutine
// identity, and the hot paths cannot afford more): it catches stray drives
// from outside the execution protocol — a leaked callback after shutdown, a
// test poking a built Sim mid-run, a delivery while the owning shard is
// quiescent — but a wrong-shard call made while the owning shard happens to
// be mid-window passes undetected.
func (sr *shardRun) ownerCheck(i int) func() bool {
	ss := sr.states[i]
	return func() bool { return ss.running.Load() || sr.control.Load() }
}

// connectRemote installs the cross-shard handoff on a directional link whose
// transmitter lives on shard src and whose receiver lives on shard dst.
func (sr *shardRun) connectRemote(l *netsim.Link, src, dst int) {
	q := sr.queues[src][dst]
	key := l.SortKey()
	l.SetRemoteDeliver(func(pkt, dup *netsim.Packet, arrive, sent time.Duration, seq uint32) {
		q.msgs = append(q.msgs, shardMsg{link: l, pkt: pkt, dup: dup, arrive: arrive, sent: sent, key: key, sub: seq})
	})
}

// window runs every shard up to (or through, if inclusive) until, in
// parallel, and returns when all workers are quiescent again.
func (sr *shardRun) window(until time.Duration, inclusive bool) {
	sr.control.Store(false)
	for _, ss := range sr.states {
		ss.cmd <- windowReq{until: until, inclusive: inclusive}
	}
	for _, ss := range sr.states {
		<-ss.done
	}
	sr.control.Store(true)
}

// drain moves every pending cross-shard delivery into its destination
// scheduler. Sources are drained in shard order and each queue in FIFO
// order, which — together with the (time, stamp, key, sub, seq) heap order —
// pins the injection order deterministically.
//
// Residual tie rule: when an injected delivery ties a competitor on BOTH
// arrival time and insertion stamp, the link-direction sort key decides
// (Link.SortKey) — the serial run schedules its hand-ups with the same key,
// so both executions break the double tie by link identity without either
// observing the other's insertion order. (Fat-tree cross-pod streams really
// produce such ties: flows dialing in lockstep collide at a core at shared
// nanosecond instants, pinned by routeflap in TestShardedRunsAreByteIdentical.)
// Two same-instant deliveries on the *same* link direction order by the
// link-local delivery sequence (shardMsg.sub, assigned by the sender in
// serialisation order) — explicit since PR 10, where it used to lean on seq
// (scheduler insertion order) plus the queue's FIFO discipline.
func (sr *shardRun) drain() int {
	n := 0
	for dst, ds := range sr.states {
		for src := range sr.states {
			q := sr.queues[src][dst]
			for i := range q.msgs {
				m := ds.getMsg()
				*m = q.msgs[i]
				ds.sched.InjectAt(m.arrive, m.sent, m.key, m.sub, simtime.KindPktDeliver, ds.fire, m)
			}
			n += len(q.msgs)
			q.msgs = q.msgs[:0]
		}
	}
	return n
}

// run executes the sharded simulation for duration d, firing the dynamics
// timeline (if any) at barriers. It matches the serial path's
// RunUntil(duration): the final window is inclusive so events scheduled at
// exactly d still execute.
func (sr *shardRun) run(d time.Duration, tl *dynamics.Timeline, events []dynamics.Event) {
	for _, ss := range sr.states {
		go ss.loop()
	}
	// Barrier times of the dynamics timeline: windows never straddle an
	// event, so each event fires with every shard stopped exactly at its
	// timestamp, before any same-timestamp packet event — the order the
	// serial scheduler produces for the timeline's build-time insertions.
	var dyn []time.Duration
	for _, ev := range events {
		if ev.At > 0 && ev.At <= d {
			dyn = append(dyn, ev.At)
		}
	}
	sort.Slice(dyn, func(i, j int) bool { return dyn[i] < dyn[j] })

	// Snapshot instants join the barrier schedule like dynamics events:
	// windows never straddle one, so the capture sees every shard stopped
	// exactly at its timestamp. A snapshot due at exactly d waits for the
	// final inclusive window, matching the serial path where the snapshot
	// event at d fires within RunUntil(d).
	nextSnap := time.Duration(0)
	if sr.snapEvery > 0 && sr.snap != nil {
		nextSnap = sr.snapEvery
	}
	obs := sr.obs // sorted, deduped, within (0, d] by construction

	w := time.Duration(0)
	for w < d {
		end := d
		if sr.plan.lookahead < d-w {
			end = w + sr.plan.lookahead
		}
		for len(dyn) > 0 && dyn[0] <= w {
			dyn = dyn[1:]
		}
		if len(dyn) > 0 && dyn[0] < end {
			end = dyn[0]
		}
		for len(obs) > 0 && obs[0] <= w {
			obs = obs[1:]
		}
		if len(obs) > 0 && obs[0] < end {
			end = obs[0]
		}
		if nextSnap > 0 && nextSnap > w && nextSnap < end {
			end = nextSnap
		}
		sr.window(end, false)
		var t0 time.Duration
		if sr.timeline != nil {
			t0 = sr.timeline.Since()
		}
		for _, ss := range sr.states {
			ss.sched.AdvanceTo(end)
		}
		injected := sr.drain()
		if sr.timeline != nil {
			sr.timeline.Add(sr.plan.nshards, probe.Span{
				Name: "barrier", Start: t0, Dur: sr.timeline.Since() - t0,
				VirtStart: end, VirtEnd: end, Count: injected,
			})
		}
		if sr.obsFire != nil && len(obs) > 0 && obs[0] == end {
			sr.obsFire(end)
			obs = obs[1:]
		}
		if tl != nil && len(dyn) > 0 && dyn[0] == end {
			tl.Advance(end)
		}
		if nextSnap > 0 && nextSnap == end && end < d {
			sr.snap(end)
			nextSnap += sr.snapEvery
		}
		w = end
	}
	sr.window(d, true)
	if nextSnap > 0 && nextSnap == d {
		sr.snap(d)
	}
	for _, ss := range sr.states {
		close(ss.cmd)
	}
	// Deliveries scheduled past the end of the run never execute; release
	// their packets so the pool gets them back.
	for _, row := range sr.queues {
		for _, q := range row {
			for i := range q.msgs {
				q.msgs[i].pkt.Release()
				if q.msgs[i].dup != nil {
					q.msgs[i].dup.Release()
				}
			}
			q.msgs = nil
		}
	}
}
