package node

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/simtime"
)

func lanCfg() netsim.LinkConfig {
	return netsim.LinkConfig{Bandwidth: 100 * netsim.Mbps, Delay: time.Millisecond, QueuePackets: 1000, Seed: 1}
}

func TestHostConstructorValidation(t *testing.T) {
	s := simtime.NewScheduler()
	for _, fn := range []func(){
		func() { NewHost("", s) },
		func() { NewHost("x", nil) },
		func() { NewNetwork(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
	h := NewHost("a", s)
	if h.Name() != "a" || h.Clock() != s {
		t.Fatal("host accessors wrong")
	}
}

func TestNetworkDeliversBetweenHosts(t *testing.T) {
	s := simtime.NewScheduler()
	net := NewNetwork(s)
	net.ConnectDuplex("mit", "utah", lanCfg())
	if net.Hosts() != 2 {
		t.Fatalf("Hosts() = %d, want 2", net.Hosts())
	}

	var got []*netsim.Packet
	err := net.Host("utah").Bind(netsim.ProtoUDP, 5000, HandlerFunc(func(p *netsim.Packet) { got = append(got, p) }))
	if err != nil {
		t.Fatal(err)
	}

	ok := net.Host("mit").Output(&netsim.Packet{
		Proto: netsim.ProtoUDP,
		Src:   netsim.Addr{Host: "mit", Port: 4000},
		Dst:   netsim.Addr{Host: "utah", Port: 5000},
		Size:  500,
	})
	if !ok {
		t.Fatal("Output failed")
	}
	s.Run()
	if len(got) != 1 || got[0].Size != 500 {
		t.Fatalf("delivered %d packets", len(got))
	}
	if st := net.Host("mit").Stats(); st.SentPackets != 1 || st.SentBytes != 500 {
		t.Fatalf("sender stats %+v", st)
	}
	if st := net.Host("utah").Stats(); st.ReceivedPackets != 1 {
		t.Fatalf("receiver stats %+v", st)
	}
}

func TestOutputFillsSourceHost(t *testing.T) {
	s := simtime.NewScheduler()
	net := NewNetwork(s)
	net.ConnectDuplex("a", "b", lanCfg())
	var src string
	net.Host("b").Bind(netsim.ProtoUDP, 1, HandlerFunc(func(p *netsim.Packet) { src = p.Src.Host }))
	net.Host("a").Output(&netsim.Packet{Proto: netsim.ProtoUDP, Dst: netsim.Addr{Host: "b", Port: 1}, Size: 10})
	s.Run()
	if src != "a" {
		t.Fatalf("source host = %q, want %q", src, "a")
	}
}

func TestNoRouteDrop(t *testing.T) {
	s := simtime.NewScheduler()
	h := NewHost("lonely", s)
	ok := h.Output(&netsim.Packet{Proto: netsim.ProtoUDP, Dst: netsim.Addr{Host: "nowhere", Port: 1}, Size: 10})
	if ok {
		t.Fatal("Output should fail with no route")
	}
	if h.Stats().NoRouteDrops != 1 {
		t.Fatalf("NoRouteDrops = %d", h.Stats().NoRouteDrops)
	}
}

func TestDefaultRoute(t *testing.T) {
	s := simtime.NewScheduler()
	net := NewNetwork(s)
	d := net.ConnectDuplex("a", "b", lanCfg())
	a := net.Host("a")
	a.SetDefaultRoute(d.Forward)
	var got int
	net.Host("b").Bind(netsim.ProtoUDP, 7, HandlerFunc(func(p *netsim.Packet) { got++ }))
	// "c" has no explicit route; default route points at b's link, and since
	// the packet is addressed to b's port, b receives it.
	a.Output(&netsim.Packet{Proto: netsim.ProtoUDP, Dst: netsim.Addr{Host: "b", Port: 7}, Size: 10})
	if a.RouteTo("unknown") != d.Forward {
		t.Fatal("RouteTo should fall back to default route")
	}
	s.Run()
	if got != 1 {
		t.Fatal("packet via explicit route not delivered")
	}
}

func TestNoListenerDrop(t *testing.T) {
	s := simtime.NewScheduler()
	net := NewNetwork(s)
	net.ConnectDuplex("a", "b", lanCfg())
	net.Host("a").Output(&netsim.Packet{Proto: netsim.ProtoUDP, Dst: netsim.Addr{Host: "b", Port: 9999}, Size: 10})
	s.Run()
	if net.Host("b").Stats().NoListenerDrops != 1 {
		t.Fatal("expected a no-listener drop")
	}
}

func TestConnectedBindingTakesPrecedence(t *testing.T) {
	s := simtime.NewScheduler()
	net := NewNetwork(s)
	net.ConnectDuplex("client", "server", lanCfg())
	srv := net.Host("server")

	var wildcard, connected int
	if err := srv.Bind(netsim.ProtoTCP, 80, HandlerFunc(func(p *netsim.Packet) { wildcard++ })); err != nil {
		t.Fatal(err)
	}
	remote := netsim.Addr{Host: "client", Port: 1234}
	if err := srv.BindConn(netsim.ProtoTCP, 80, remote, HandlerFunc(func(p *netsim.Packet) { connected++ })); err != nil {
		t.Fatal(err)
	}

	send := func(srcPort int) {
		net.Host("client").Output(&netsim.Packet{
			Proto: netsim.ProtoTCP,
			Src:   netsim.Addr{Host: "client", Port: srcPort},
			Dst:   netsim.Addr{Host: "server", Port: 80},
			Size:  40,
		})
	}
	send(1234) // matches the connected binding
	send(9999) // falls back to the wildcard listener
	s.Run()
	if connected != 1 || wildcard != 1 {
		t.Fatalf("connected=%d wildcard=%d, want 1/1", connected, wildcard)
	}

	srv.UnbindConn(netsim.ProtoTCP, 80, remote)
	send(1234)
	s.Run()
	if wildcard != 2 {
		t.Fatal("after UnbindConn the wildcard listener should receive the packet")
	}
	srv.Unbind(netsim.ProtoTCP, 80)
	send(1234)
	s.Run()
	if srv.Stats().NoListenerDrops != 1 {
		t.Fatal("after Unbind packets should be dropped")
	}
}

func TestDuplicateBindFails(t *testing.T) {
	s := simtime.NewScheduler()
	h := NewHost("a", s)
	if err := h.Bind(netsim.ProtoUDP, 53, HandlerFunc(func(p *netsim.Packet) {})); err != nil {
		t.Fatal(err)
	}
	if err := h.Bind(netsim.ProtoUDP, 53, HandlerFunc(func(p *netsim.Packet) {})); err == nil {
		t.Fatal("duplicate bind should fail")
	}
	if err := h.Bind(netsim.ProtoUDP, 54, nil); err == nil {
		t.Fatal("nil handler should fail")
	}
}

func TestAllocPortUnique(t *testing.T) {
	s := simtime.NewScheduler()
	h := NewHost("a", s)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		p := h.AllocPort()
		if seen[p] {
			t.Fatalf("port %d allocated twice", p)
		}
		seen[p] = true
	}
}

type recordingNotifier struct {
	keys  []netsim.FlowKey
	bytes []int
}

func (r *recordingNotifier) NotifyTransmit(k netsim.FlowKey, n int) {
	r.keys = append(r.keys, k)
	r.bytes = append(r.bytes, n)
}

func TestTransmitNotifierInvokedPerPacket(t *testing.T) {
	s := simtime.NewScheduler()
	net := NewNetwork(s)
	net.ConnectDuplex("a", "b", lanCfg())
	rec := &recordingNotifier{}
	a := net.Host("a")
	a.SetTransmitNotifier(rec)
	net.Host("b").Bind(netsim.ProtoUDP, 1, HandlerFunc(func(p *netsim.Packet) {}))

	for i := 0; i < 3; i++ {
		a.Output(&netsim.Packet{
			Proto: netsim.ProtoUDP,
			Src:   netsim.Addr{Host: "a", Port: 100},
			Dst:   netsim.Addr{Host: "b", Port: 1},
			Size:  200 + i,
		})
	}
	s.Run()
	if len(rec.keys) != 3 {
		t.Fatalf("notifier called %d times, want 3", len(rec.keys))
	}
	if rec.bytes[2] != 202 {
		t.Fatalf("notifier byte counts %v", rec.bytes)
	}
	if rec.keys[0].Dst.Host != "b" || rec.keys[0].Src.Port != 100 {
		t.Fatalf("notifier key %+v", rec.keys[0])
	}
	if a.Stats().NotifierUpcalled != 3 {
		t.Fatalf("NotifierUpcalled = %d", a.Stats().NotifierUpcalled)
	}
}

func TestNotifierNotCalledWhenAbsent(t *testing.T) {
	s := simtime.NewScheduler()
	net := NewNetwork(s)
	net.ConnectDuplex("a", "b", lanCfg())
	a := net.Host("a")
	a.Output(&netsim.Packet{Proto: netsim.ProtoUDP, Dst: netsim.Addr{Host: "b", Port: 1}, Size: 10})
	if a.Stats().NotifierUpcalled != 0 {
		t.Fatal("notifier counter should stay zero without a notifier")
	}
}

func TestHostReturnsSameInstance(t *testing.T) {
	s := simtime.NewScheduler()
	net := NewNetwork(s)
	if net.Host("x") != net.Host("x") {
		t.Fatal("Host should be idempotent")
	}
}

func TestAddRouteNilPanics(t *testing.T) {
	s := simtime.NewScheduler()
	h := NewHost("a", s)
	defer func() {
		if recover() == nil {
			t.Fatal("AddRoute(nil) should panic")
		}
	}()
	h.AddRoute("b", nil)
}

func TestOutputNilPanics(t *testing.T) {
	s := simtime.NewScheduler()
	h := NewHost("a", s)
	defer func() {
		if recover() == nil {
			t.Fatal("Output(nil) should panic")
		}
	}()
	h.Output(nil)
}

// chain wires a <-> r <-> b with r forwarding, installing the multi-hop
// routes a->b and b->a through the router, and returns the network.
func chain(s *simtime.Scheduler) *Network {
	net := NewNetwork(s)
	ar := net.ConnectDuplex("a", "r", lanCfg())
	rb := net.ConnectDuplex("r", "b", lanCfg())
	net.Router("r")
	net.Host("a").AddRoute("b", ar.Forward)
	net.Host("b").AddRoute("a", rb.Reverse)
	return net
}

func TestForwardingRelaysMultiHop(t *testing.T) {
	s := simtime.NewScheduler()
	net := chain(s)
	var got int
	net.Host("b").Bind(netsim.ProtoUDP, 5, HandlerFunc(func(p *netsim.Packet) {
		got++
		if p.TTL != netsim.DefaultTTL-1 {
			t.Errorf("TTL = %d, want %d", p.TTL, netsim.DefaultTTL-1)
		}
	}))
	net.Host("a").Output(&netsim.Packet{Proto: netsim.ProtoUDP, Dst: netsim.Addr{Host: "b", Port: 5}, Size: 100})
	s.Run()
	if got != 1 {
		t.Fatalf("delivered %d packets across the router, want 1", got)
	}
	rst := net.Host("r").Stats()
	if rst.ForwardedPackets != 1 || rst.ForwardedBytes != 100 {
		t.Fatalf("router forwarding stats %+v", rst)
	}
	if rst.ReceivedPackets != 0 {
		t.Fatalf("transit traffic must not count as received: %+v", rst)
	}
}

func TestForwardingRouteMissCounted(t *testing.T) {
	s := simtime.NewScheduler()
	net := chain(s)
	// a has no route to "ghost"; give it one via the router, which has none.
	ar := net.Host("a").RouteTo("r")
	net.Host("a").AddRoute("ghost", ar)
	net.Host("a").Output(&netsim.Packet{Proto: netsim.ProtoUDP, Dst: netsim.Addr{Host: "ghost", Port: 1}, Size: 10})
	s.Run()
	if d := net.Host("r").Stats().ForwardMissDrops; d != 1 {
		t.Fatalf("ForwardMissDrops = %d, want 1", d)
	}
	if d := net.Host("r").Stats().RouteMissDrops; d != 0 {
		t.Fatalf("a router's table miss must not count as a leaf drop, got RouteMissDrops = %d", d)
	}
}

func TestForwardingDefaultRouteFallback(t *testing.T) {
	s := simtime.NewScheduler()
	net := chain(s)
	// The router has no explicit route to "b"... remove by using a fresh dst:
	// route a->c via r, r reaches c only through its default route.
	rc := net.ConnectDuplex("r", "c", lanCfg())
	net.Host("r").SetDefaultRoute(rc.Forward)
	ar := net.Host("a").RouteTo("r")
	net.Host("a").AddRoute("c", ar)
	var got int
	net.Host("c").Bind(netsim.ProtoUDP, 5, HandlerFunc(func(p *netsim.Packet) { got++ }))
	// Delete r's explicit route to c installed by ConnectDuplex so the
	// default route is what carries the packet.
	net.Host("r").DeleteRoute("c")
	net.Host("a").Output(&netsim.Packet{Proto: netsim.ProtoUDP, Dst: netsim.Addr{Host: "c", Port: 5}, Size: 10})
	s.Run()
	if got != 1 {
		t.Fatal("packet should reach c via the router's default route")
	}
	if d := net.Host("r").Stats().ForwardMissDrops; d != 0 {
		t.Fatalf("default-route fallback must not count a route miss, got %d", d)
	}
}

func TestTTLExpiryBreaksRoutingLoop(t *testing.T) {
	s := simtime.NewScheduler()
	net := NewNetwork(s)
	// Two routers pointing at each other for an unreachable destination.
	d := net.ConnectDuplex("r1", "r2", lanCfg())
	net.Router("r1")
	net.Router("r2")
	net.Host("r1").AddRoute("ghost", d.Forward)
	net.Host("r2").AddRoute("ghost", d.Reverse)
	net.Host("r1").Output(&netsim.Packet{Proto: netsim.ProtoUDP, Dst: netsim.Addr{Host: "ghost", Port: 1}, Size: 10})
	s.Run()
	exp := net.Host("r1").Stats().TTLExpiredDrops + net.Host("r2").Stats().TTLExpiredDrops
	if exp != 1 {
		t.Fatalf("TTLExpiredDrops total = %d, want 1", exp)
	}
	hops := net.Host("r1").Stats().ForwardedPackets + net.Host("r2").Stats().ForwardedPackets
	if hops != netsim.DefaultTTL-1 {
		t.Fatalf("packet took %d hops before expiry, want %d", hops, netsim.DefaultTTL-1)
	}
}

func TestNonForwardingHostDropsTransit(t *testing.T) {
	s := simtime.NewScheduler()
	net := NewNetwork(s)
	net.ConnectDuplex("a", "b", lanCfg())
	// Address a packet to a host name b does not own; b must not demux it.
	var handled int
	net.Host("b").Bind(netsim.ProtoUDP, 1, HandlerFunc(func(p *netsim.Packet) { handled++ }))
	ab := net.Host("a").RouteTo("b")
	net.Host("a").AddRoute("elsewhere", ab)
	net.Host("a").Output(&netsim.Packet{Proto: netsim.ProtoUDP, Dst: netsim.Addr{Host: "elsewhere", Port: 1}, Size: 10})
	s.Run()
	if handled != 0 {
		t.Fatal("transit packet must not be demultiplexed to a local binding")
	}
	if d := net.Host("b").Stats().RouteMissDrops; d != 1 {
		t.Fatalf("RouteMissDrops = %d, want 1", d)
	}
}

// TestInstallRoutesAtomicSwap checks the route-table replacement used by the
// dynamics subsystem: the new table fully replaces the old one, the change
// count reflects added/removed/repointed entries, and forwarding immediately
// honours the new table.
func TestInstallRoutesAtomicSwap(t *testing.T) {
	s := simtime.NewScheduler()
	net := NewNetwork(s)
	d1 := net.ConnectDuplex("a", "b", lanCfg())
	d2 := net.ConnectDuplex("a", "c", lanCfg())
	h := net.Host("a")

	// ConnectDuplex installed {b: d1.Forward, c: d2.Forward}. Repoint b via c,
	// drop c, add d.
	changed := h.InstallRoutes(map[string]*netsim.Link{
		"b": d2.Forward,
		"d": d1.Forward,
	})
	if changed != 3 {
		t.Fatalf("changed = %d, want 3 (b repointed, c removed, d added)", changed)
	}
	if h.RouteTo("b") != d2.Forward || h.RouteTo("c") != nil || h.RouteTo("d") != d1.Forward {
		t.Fatal("table not atomically replaced")
	}
	// Installing the identical table changes nothing.
	if changed := h.InstallRoutes(map[string]*netsim.Link{"b": d2.Forward, "d": d1.Forward}); changed != 0 {
		t.Fatalf("idempotent install changed %d entries", changed)
	}
	// A nil table empties the host's routes; sends then count NoRouteDrops.
	if changed := h.InstallRoutes(nil); changed != 2 {
		t.Fatalf("clearing changed %d entries, want 2", changed)
	}
	h.Output(&netsim.Packet{Proto: netsim.ProtoUDP, Dst: netsim.Addr{Host: "b", Port: 1}, Size: 10})
	if drops := h.Stats().NoRouteDrops; drops != 1 {
		t.Fatalf("NoRouteDrops = %d, want 1", drops)
	}
}

// TestDomainRouteSuffixMatch checks the hierarchical lookup order: exact
// match first, then the longest dotted name-suffix in the domain table, then
// the default route.
func TestDomainRouteSuffixMatch(t *testing.T) {
	s := simtime.NewScheduler()
	net := NewNetwork(s)
	d1 := net.ConnectDuplex("r", "edge", lanCfg())
	d2 := net.ConnectDuplex("r", "pod", lanCfg())
	d3 := net.ConnectDuplex("r", "up", lanCfg())
	h := net.Host("r")
	h.InstallHierRoutes(
		map[string]*netsim.Link{"h9.e1.p2": d3.Forward},
		map[string]*netsim.Link{"e1.p2": d1.Forward, "p2": d2.Forward},
		d3.Forward,
	)
	cases := []struct {
		dst  string
		want *netsim.Link
	}{
		{"h9.e1.p2", d3.Forward}, // exact beats the e1.p2 domain
		{"h3.e1.p2", d1.Forward}, // longest suffix e1.p2 beats p2
		{"h3.e7.p2", d2.Forward}, // only p2 matches
		{"h3.e7.p9", d3.Forward}, // no suffix matches: default route
		{"p2", d3.Forward},       // a domain never matches the bare name
	}
	for _, c := range cases {
		if got := h.RouteTo(c.dst); got != c.want {
			t.Errorf("RouteTo(%q) = %v, want %v", c.dst, got, c.want)
		}
	}
}

// TestInstallHierRoutesCountsChanges pins the changed-entry accounting across
// the exact table, the domain table and the default route.
func TestInstallHierRoutesCountsChanges(t *testing.T) {
	s := simtime.NewScheduler()
	net := NewNetwork(s)
	d1 := net.ConnectDuplex("r", "a", lanCfg())
	d2 := net.ConnectDuplex("r", "b", lanCfg())
	h := net.Host("r")
	// ConnectDuplex installed exact routes {a, b}; replacing them with one
	// exact entry, two domains and a default counts every delta.
	changed := h.InstallHierRoutes(
		map[string]*netsim.Link{"a": d1.Forward},
		map[string]*netsim.Link{"p1": d1.Forward, "p2": d2.Forward},
		d2.Forward,
	)
	// b removed (1) + p1, p2 added (2) + default set (1) = 4.
	if changed != 4 {
		t.Fatalf("changed = %d, want 4", changed)
	}
	// Idempotent reinstall changes nothing.
	if changed := h.InstallHierRoutes(
		map[string]*netsim.Link{"a": d1.Forward},
		map[string]*netsim.Link{"p1": d1.Forward, "p2": d2.Forward},
		d2.Forward,
	); changed != 0 {
		t.Fatalf("idempotent install changed %d entries", changed)
	}
	// Repointing one domain and dropping the default counts 2.
	if changed := h.InstallHierRoutes(
		map[string]*netsim.Link{"a": d1.Forward},
		map[string]*netsim.Link{"p1": d2.Forward, "p2": d2.Forward},
		nil,
	); changed != 2 {
		t.Fatalf("changed = %d, want 2 (p1 repointed, default cleared)", changed)
	}
}
